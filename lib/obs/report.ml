type breakdown = {
  total : int;
  compute : int;
  wait : int;
  propagate : int;
  diff : int;
  gc : int;
  monitor : int;
  recover : int;
}

let breakdown ~total events =
  let wait = ref 0 in
  let propagate = ref 0 in
  let diff = ref 0 in
  let gc = ref 0 in
  let snapshot = ref 0 in
  let close = ref 0 in
  let recover = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Kendo_wait { cycles } -> wait := !wait + cycles
      | Trace.Lock_acquire { queued; _ } -> wait := !wait + queued
      | Trace.Barrier_stall { cycles; _ } -> wait := !wait + cycles
      | Trace.Propagate { cycles; _ } -> propagate := !propagate + cycles
      | Trace.Diff { cycles; _ } -> diff := !diff + cycles
      | Trace.Gc { cycles; _ } -> gc := !gc + cycles
      | Trace.Snapshot { cycles; _ } -> snapshot := !snapshot + cycles
      | Trace.Slice_close { cycles; _ } -> close := !close + cycles
      | Trace.Recovery { cycles; _ } -> recover := !recover + cycles
      | _ -> ())
    events;
  (* Diffs and GC happen inside slice close; what's left of the close
     cost is bookkeeping, which we lump with snapshots as "monitor". *)
  let monitor = !snapshot + max 0 (!close - !diff - !gc) in
  let attributed = !wait + !propagate + !diff + !gc + monitor + !recover in
  {
    total;
    compute = max 0 (total - attributed);
    wait = !wait;
    propagate = !propagate;
    diff = !diff;
    gc = !gc;
    monitor;
    recover = !recover;
  }

type lock_row = {
  obj : string;
  handle : int;
  acquires : int;
  contended : int;
  wait : int;
  queued : int;
  hold : int;
}

let lock_table events =
  let tbl = Hashtbl.create 16 in
  let row obj handle =
    match Hashtbl.find_opt tbl (obj, handle) with
    | Some r -> r
    | None ->
      let r =
        ref { obj; handle; acquires = 0; contended = 0; wait = 0;
              queued = 0; hold = 0 }
      in
      Hashtbl.replace tbl (obj, handle) r;
      r
  in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Lock_acquire { obj; handle; wait; queued } ->
        let r = row obj handle in
        r :=
          { !r with
            acquires = !r.acquires + 1;
            contended = (!r.contended + if wait > 0 then 1 else 0);
            wait = !r.wait + wait;
            queued = !r.queued + queued;
          }
      | Trace.Lock_release { obj; handle; hold } ->
        let r = row obj handle in
        r := { !r with hold = !r.hold + hold }
      | _ -> ())
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.wait a.wait with
         | 0 -> compare (a.obj, a.handle) (b.obj, b.handle)
         | c -> c)

let hot_pages ?(top = 10) events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Prop_page { page; bytes } ->
        let b, n =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl page)
        in
        Hashtbl.replace tbl page (b + bytes, n + 1)
      | _ -> ())
    events;
  Hashtbl.fold (fun page (bytes, times) acc -> (page, bytes, times) :: acc)
    tbl []
  |> List.sort (fun (pa, ba, _) (pb, bb, _) ->
         match compare bb ba with 0 -> compare pa pb | c -> c)
  |> List.filteri (fun i _ -> i < top)

let fill_metrics m events =
  List.iter
    (fun (e : Trace.event) ->
      Metrics.incr m "trace.events";
      Metrics.incr m ("trace." ^ Trace.kind_name e.kind);
      match e.kind with
      | Trace.Slice_close { pages; bytes; cycles; _ } ->
        Metrics.observe m "slice.pages" pages;
        Metrics.observe m "slice.bytes" bytes;
        Metrics.observe m "slice.close_cycles" cycles
      | Trace.Diff { bytes; _ } -> Metrics.observe m "diff.bytes" bytes
      | Trace.Propagate { bytes; cycles; _ } ->
        Metrics.observe m "propagate.bytes" bytes;
        Metrics.observe m "propagate.cycles" cycles
      | Trace.Lock_acquire { wait; _ } -> Metrics.observe m "lock.wait" wait
      | Trace.Lock_release { hold; _ } -> Metrics.observe m "lock.hold" hold
      | Trace.Kendo_wait { cycles } -> Metrics.observe m "kendo.wait" cycles
      | Trace.Barrier_stall { cycles; _ } ->
        Metrics.observe m "barrier.stall" cycles
      | Trace.Recovery { action; cycles; _ } ->
        Metrics.incr m ("recovery." ^ action);
        Metrics.observe m "recovery.cycles" cycles
      | _ -> ())
    events

(* --- rendering ------------------------------------------------------- *)

let pct total v =
  if total <= 0 then 0. else 100. *. float_of_int v /. float_of_int total

let render_breakdown b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "time breakdown (simulated cycles)\n";
  let line name v =
    Buffer.add_string buf
      (Printf.sprintf "  %-10s %12d  %5.1f%%\n" name v (pct b.total v))
  in
  line "compute" b.compute;
  line "wait" b.wait;
  line "propagate" b.propagate;
  line "diff" b.diff;
  line "gc" b.gc;
  line "monitor" b.monitor;
  line "recover" b.recover;
  Buffer.add_string buf (Printf.sprintf "  %-10s %12d\n" "total" b.total);
  Buffer.contents buf

let render_lock_table rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "lock contention\n";
  if rows = [] then Buffer.add_string buf "  (no synchronization objects)\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  %-10s %6s %9s %9s %10s %10s %10s\n" "obj" "handle"
         "acquires" "contended" "wait" "queued" "hold");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %6d %9d %9d %10d %10d %10d\n" r.obj
             r.handle r.acquires r.contended r.wait r.queued r.hold))
      rows
  end;
  Buffer.contents buf

let render_hot_pages pages =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "hottest pages by propagated bytes\n";
  if pages = [] then Buffer.add_string buf "  (no propagation)\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  %8s %12s %8s\n" "page" "bytes" "times");
    List.iter
      (fun (page, bytes, times) ->
        Buffer.add_string buf
          (Printf.sprintf "  %8d %12d %8d\n" page bytes times))
      pages
  end;
  Buffer.contents buf

let render_quantiles m names =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "latency quantiles (simulated cycles)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %9s %10s %10s %10s %10s\n" "histogram" "count"
       "mean" "p50" "p99" "p999");
  List.iter
    (fun name ->
      match Metrics.histogram m name with
      | None -> ()
      | Some s ->
        let mean = if s.count = 0 then 0 else s.sum / s.count in
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %9d %10d %10d %10d %10d\n" name s.count
             mean
             (Metrics.quantile s 0.5)
             (Metrics.quantile s 0.99)
             (Metrics.quantile s 0.999)))
    names;
  Buffer.contents buf
