(* Per-request span trees, reconstructed offline from the causal trace.

   The serve workloads emit one [Trace.Span] node per request phase
   (admission, retry attempts, backoff, breaker transitions, service /
   degraded service, response).  All payloads are measured in *virtual*
   per-worker cycles — the clock domain the server's deadlines, backoff
   and latency quantiles live in — so a reconstructed tree is identical
   across runtimes even though the engine [time] stamps on the events
   are not.  Rendering therefore prints payloads only, never stamps. *)

type record = {
  req : int;
  worker : int;
  arrival : int;
  outcome : int;
  latency : int;
  attempts : int;
  transitions : int;
  queue : int;
  backoff : int;
  service : int;
  stale : int;
  shed : int;
  events : Trace.event list;
}

type t = { complete : record list; incomplete : int }

(* Outcome codes follow lib/server/server.ml's wire encoding. *)
let outcome_name = function
  | 1 -> "served"
  | 2 -> "stale"
  | 3 -> "shed"
  | 4 -> "timed_out"
  | 5 -> "failed"
  | _ -> "unknown"

type partial = {
  mutable p_worker : int;
  mutable p_arrival : int;
  mutable p_queue : int;
  mutable p_backoff : int;
  mutable p_service : int;
  mutable p_stale : int;
  mutable p_shed : int;
  mutable p_attempts : int;
  mutable p_transitions : int;
  mutable p_events : Trace.event list; (* reversed *)
}

let fresh_partial ~worker ~arrival ~queue ev =
  {
    p_worker = worker;
    p_arrival = arrival;
    p_queue = queue;
    p_backoff = 0;
    p_service = 0;
    p_stale = 0;
    p_shed = 0;
    p_attempts = 0;
    p_transitions = 0;
    p_events = [ ev ];
  }

(* A crashed-and-replayed request emits its tree twice: the replay's
   admit node supersedes the earlier partial, and a req that completes
   twice keeps the last completion.  A partial with no response by the
   end of the trace (crash without recovery, or a ring that dropped the
   tail) counts as incomplete unless some emission of the same req did
   complete. *)
let collect events =
  let open_tbl : (int, partial) Hashtbl.t = Hashtbl.create 256 in
  let done_tbl : (int, record) Hashtbl.t = Hashtbl.create 256 in
  let orphans = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Span { phase; req; a; b } -> (
        if phase = "admit" then
          Hashtbl.replace open_tbl req
            (fresh_partial ~worker:e.tid ~arrival:a ~queue:b e)
        else
          match Hashtbl.find_opt open_tbl req with
          | None ->
            (* the admit was lost (ring overflow) — unusable for
               attribution, but remember the req so it is reported *)
            Hashtbl.replace orphans req ()
          | Some p -> (
            p.p_events <- e :: p.p_events;
            match phase with
            | "attempt" -> p.p_attempts <- p.p_attempts + 1
            | "backoff" -> p.p_backoff <- p.p_backoff + b
            | "service" -> p.p_service <- p.p_service + b
            | "stale" -> p.p_stale <- p.p_stale + b
            | "shed" -> p.p_shed <- p.p_shed + b
            | "breaker" -> p.p_transitions <- p.p_transitions + b
            | "response" ->
              Hashtbl.remove open_tbl req;
              Hashtbl.replace done_tbl req
                {
                  req;
                  worker = p.p_worker;
                  arrival = p.p_arrival;
                  outcome = b;
                  latency = a;
                  attempts = p.p_attempts;
                  transitions = p.p_transitions;
                  queue = p.p_queue;
                  backoff = p.p_backoff;
                  service = p.p_service;
                  stale = p.p_stale;
                  shed = p.p_shed;
                  events = List.rev p.p_events;
                }
            | _ -> ()))
      | _ -> ())
    events;
  let incomplete = ref 0 in
  let count_if_incomplete req =
    if not (Hashtbl.mem done_tbl req) then incr incomplete
  in
  Hashtbl.iter (fun req _ -> count_if_incomplete req) open_tbl;
  Hashtbl.iter
    (fun req () ->
      if not (Hashtbl.mem open_tbl req) then count_if_incomplete req)
    orphans;
  let complete =
    Hashtbl.fold (fun _ r acc -> r :: acc) done_tbl []
    |> List.sort (fun a b -> compare a.req b.req)
  in
  { complete; incomplete = !incomplete }

let depth r = 1 + r.attempts

let lock_outcome_name = function
  | 0 -> "ok"
  | 1 -> "poisoned"
  | 2 -> "timed_out"
  | n -> string_of_int n

let render_tree buf r =
  Buffer.add_string buf
    (Printf.sprintf "req %d worker %d arrival=%d outcome=%s latency=%d\n"
       r.req r.worker r.arrival (outcome_name r.outcome) r.latency);
  let in_attempt = ref false in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Span { phase; a; b; _ } -> (
        match phase with
        | "admit" ->
          in_attempt := false;
          Buffer.add_string buf (Printf.sprintf "|- queue %d\n" b)
        | "attempt" ->
          in_attempt := true;
          Buffer.add_string buf
            (Printf.sprintf "|- attempt %d: lock %s\n" a
               (lock_outcome_name b))
        | "backoff" ->
          Buffer.add_string buf
            (Printf.sprintf "%s backoff %d\n"
               (if !in_attempt then "|  `-" else "|-")
               b)
        | "service" | "stale" | "shed" ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %d (shard %d)\n"
               (if !in_attempt then "|  `-" else "|-")
               phase b a)
        | "breaker" ->
          Buffer.add_string buf
            (Printf.sprintf "|- breaker transitions=%d (shard %d)\n" b a)
        | "response" ->
          Buffer.add_string buf
            (Printf.sprintf "`- response %s latency=%d\n" (outcome_name b)
               a)
        | other ->
          Buffer.add_string buf (Printf.sprintf "|- %s a=%d b=%d\n" other a b)
        )
      | _ -> ())
    r.events
