(** Chrome [trace_event] JSON export.

    The output loads in [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: one track per simulated thread (metadata [M] events name
    them), complete [X] events for work with a duration (slice close,
    page diff, propagation, GC, Kendo turn wait, lock wait, barrier
    stall), instant [i] events for the rest, and flow arrows ([s]/[f]
    keyed by slice id) from each slice's close on the producing thread to
    every propagation of it into a consumer thread — the paper's
    release→acquire happens-before edges, drawn.

    Timestamps are simulated cycles presented as microseconds; no host
    time enters the file, so same-seed exports are byte-identical. *)

val export : ?process:string -> Trace.event list -> string
(** [export events] is the complete JSON document (object form, with a
    [traceEvents] array).  [process] names the single process track
    (default ["rfdet"]). *)
