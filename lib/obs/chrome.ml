let esc = Metrics.json_escape

let args_of_kind kind =
  List.map
    (fun (k, v) ->
      ( k,
        match int_of_string_opt v with
        | Some _ -> v
        | None -> Printf.sprintf "\"%s\"" (esc v) ))
    (Trace.fields_of_kind kind)

let add_event b ~first ~name ~cat ~ph ~ts ~tid ?dur ?id ?bp ?(args = []) () =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b
    (Printf.sprintf
       "  {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":1,\"tid\":%d"
       (esc name) (esc cat) ph ts tid);
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  (match id with
  | Some i -> Buffer.add_string b (Printf.sprintf ",\"id\":%d" i)
  | None -> ());
  (match bp with
  | Some s -> Buffer.add_string b (Printf.sprintf ",\"bp\":\"%s\"" s)
  | None -> ());
  if args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        Buffer.add_string b
          (Printf.sprintf "%s\"%s\":%s" (if i = 0 then "" else ",") (esc k) v))
      args;
    Buffer.add_char b '}'
  end;
  Buffer.add_string b "}"

let export ?(process = "rfdet") events =
  let b = Buffer.create 8192 in
  let first = ref true in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  (* metadata: one named track per thread, in tid order *)
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events)
  in
  add_event b ~first ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:0
    ~tid:0
    ~args:[ ("name", Printf.sprintf "\"%s\"" (esc process)) ]
    ();
  List.iter
    (fun tid ->
      add_event b ~first ~name:"thread_name" ~cat:"__metadata" ~ph:"M" ~ts:0
        ~tid
        ~args:[ ("name", Printf.sprintf "\"thread %d\"" tid) ]
        ())
    tids;
  List.iter
    (fun (e : Trace.event) ->
      let name = Trace.kind_name e.kind in
      let args =
        args_of_kind e.kind
        @
        if Array.length e.vc = 0 then []
        else [ ("vc", Printf.sprintf "\"%s\"" (Trace.vc_to_string e.vc)) ]
      in
      let instant cat =
        add_event b ~first ~name ~cat ~ph:"i" ~ts:e.time ~tid:e.tid ~args ()
      in
      match e.kind with
      | Trace.Slice_close { slice; cycles; _ } ->
        add_event b ~first ~name ~cat:"slice" ~ph:"X" ~ts:e.time ~tid:e.tid
          ~dur:(max 0 cycles) ~args ();
        (* flow start: this slice's bytes leave the producing thread *)
        if slice >= 0 then
          add_event b ~first ~name:"slice-flow" ~cat:"propagation" ~ph:"s"
            ~ts:e.time ~tid:e.tid ~id:slice ()
      | Trace.Propagate { slice; cycles; _ } ->
        add_event b ~first ~name ~cat:"propagation" ~ph:"X" ~ts:e.time
          ~tid:e.tid ~dur:(max 0 cycles) ~args ();
        (* flow finish: the bytes land in the consuming thread *)
        if slice >= 0 then
          add_event b ~first ~name:"slice-flow" ~cat:"propagation" ~ph:"f"
            ~bp:"e" ~ts:e.time ~tid:e.tid ~id:slice ()
      | Trace.Diff { cycles; _ } ->
        add_event b ~first ~name ~cat:"diff" ~ph:"X" ~ts:e.time ~tid:e.tid
          ~dur:(max 0 cycles) ~args ()
      | Trace.Gc { cycles; _ } ->
        add_event b ~first ~name ~cat:"gc" ~ph:"X" ~ts:e.time ~tid:e.tid
          ~dur:(max 0 cycles) ~args ()
      | Trace.Kendo_wait { cycles } ->
        add_event b ~first ~name ~cat:"wait" ~ph:"X" ~ts:e.time ~tid:e.tid
          ~dur:(max 0 cycles) ~args ()
      | Trace.Barrier_stall { cycles; _ } ->
        add_event b ~first ~name ~cat:"wait" ~ph:"X" ~ts:e.time ~tid:e.tid
          ~dur:(max 0 cycles) ~args ()
      | Trace.Lock_acquire { wait; _ } ->
        if wait > 0 then
          add_event b ~first ~name:"lock_wait" ~cat:"wait" ~ph:"X"
            ~ts:(e.time - wait) ~tid:e.tid ~dur:wait ~args ();
        instant "sync"
      | Trace.Lock_release _ -> instant "sync"
      | Trace.Steal _ -> instant "sync"
      | Trace.Slice_open -> instant "slice"
      | Trace.Snapshot _ -> instant "monitor"
      | Trace.Prop_page _ -> instant "propagation"
      | Trace.Fault _ -> instant "fault"
      | Trace.Recovery { cycles; _ } ->
        if cycles > 0 then
          add_event b ~first ~name ~cat:"recovery" ~ph:"X" ~ts:e.time
            ~tid:e.tid ~dur:cycles ~args ()
        else instant "recovery"
      | Trace.Span { phase; req; b = payload; _ } ->
        (* One async track per request (grouped by id), flow-arrowed from
           its admission to the slice on the worker track that served it.
           Flow ids are offset so they cannot collide with slice ids. *)
        let rname = Printf.sprintf "req %d" req in
        let flow_id = req + 0x1000000 in
        (match phase with
        | "admit" ->
          add_event b ~first ~name:rname ~cat:"request" ~ph:"b" ~ts:e.time
            ~tid:e.tid ~id:req ~args ();
          add_event b ~first ~name:"request-flow" ~cat:"request" ~ph:"s"
            ~ts:e.time ~tid:e.tid ~id:flow_id ()
        | "response" ->
          add_event b ~first ~name:rname ~cat:"request" ~ph:"e" ~ts:e.time
            ~tid:e.tid ~id:req ~args ()
        | "service" | "stale" | "shed" ->
          add_event b ~first ~name:phase ~cat:"request" ~ph:"X" ~ts:e.time
            ~tid:e.tid ~dur:(max 0 payload) ~args ();
          add_event b ~first ~name:"request-flow" ~cat:"request" ~ph:"f"
            ~bp:"e" ~ts:e.time ~tid:e.tid ~id:flow_id ()
        | _ ->
          add_event b ~first ~name:rname ~cat:"request" ~ph:"n" ~ts:e.time
            ~tid:e.tid ~id:req ~args ())
      | Trace.Thread_exit | Trace.Thread_crash -> instant "lifecycle")
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
