(** Offline critical-path latency attribution over span trees.

    [walk] traverses a request's span tree backwards from its response
    node and attributes every cycle of the measured latency to an exact
    segment vector over {!segment_labels}.  The attribution is {e exact}
    by contract: if the segment cycles do not sum bit-exactly to the
    measured latency, [walk] returns [Error] instead of an approximate
    answer — a residual would mean a phase of the request's life went
    unrecorded, which in a deterministic system is a bug, not noise.

    All arithmetic is over virtual per-worker cycles and fixed label
    sets; the JSON renderers emit integers only, in a fixed order, so
    every output here is byte-identical across runtimes, [--jobs] counts
    and repeat runs at the same seed. *)

type attribution = {
  req : int;
  worker : int;
  arrival : int;
  outcome : int;
  latency : int;
  attempts : int;
  transitions : int;
  segments : (string * int) list;
      (** cycles per segment, in [segment_labels] order; sums exactly to
          [latency] *)
}

val segment_labels : string list
(** Canonical segment order: queue, backoff, service, stale, shed. *)

val walk : Span.record -> (attribution, string) result
(** Attribute one request, enforcing the exact-sum invariant. *)

val walk_all : Span.record list -> (attribution list, string) result
(** [walk] every record (input order preserved); first violation wins. *)

(** {1 Cohort aggregation} *)

type cohort = {
  label : string;  (** "p50" / "p99" / "p999" *)
  per_mille : int;
  count : int;  (** requests at or above the quantile threshold *)
  threshold : int;  (** nearest-rank latency quantile, in cycles *)
  total_latency : int;
  cycles : (string * int) list;  (** summed segment cycles *)
  shares_pm : (string * int) list;
      (** integer per-mille share of [total_latency] per segment *)
}

val cohort : label:string -> per_mille:int -> attribution list -> cohort
(** The cohort of requests whose latency is at or above the given
    nearest-rank quantile (e.g. [~per_mille:999] = the p999 tail). *)

val cohorts : attribution list -> cohort list
(** The p50, p99 and p999 cohorts, in that order. *)

(** {1 Exemplars} *)

val top_slowest : int -> attribution list -> attribution list
(** Highest latency first; ties broken by request id ascending. *)

val top_deepest : int -> attribution list -> attribution list
(** Most lock attempts first (deepest span tree), then latency, then
    request id — the convoy/retry exemplars. *)

(** {1 Canonical JSON} *)

val attribution_json : attribution -> string
(** One attribution as a single-line JSON object, including the replay
    coordinate's virtual-cycle window [\[arrival, arrival+latency\]]
    (the run seeds that complete the coordinate live at document
    level). *)

val cohort_json : cohort -> string

val json : meta:(string * string) list -> top:int -> attribution list -> string
(** The full sorted document: [meta] pairs (key, raw JSON value) echoed
    in order, then per-cohort attribution and the top-k slowest/deepest
    exemplar lists. *)
