(** Ring-buffered causal event sink.

    The sink is deterministically inert by construction: it never touches
    simulated clocks, instruction counts, profiles or random state —
    emission only appends to a host-side buffer.  With an enabled sink a
    run therefore produces bit-identical outputs, signatures and
    [Determinism.check] verdicts to the same run with [null] (enforced by
    [test/test_obs.ml] and the CI [observability] job), and the trace
    itself is a pure function of (workload, runtime, seed).

    Emission sites must guard on [enabled] before building event payloads
    so a disabled sink costs one branch per site.

    Domain safety: an enabled sink is unsynchronized mutable state —
    give each simulated run its own and never share one across host
    domains ([Rfdet_par.Par] sweeps).  [null] is the one sink that may
    be shared: every operation on it, [clear] included, leaves it
    untouched. *)

type t

val create : ?capacity:int -> unit -> t
(** An enabled sink.  [capacity] > 0 keeps only the last [capacity]
    events (a ring); [capacity = 0] (the default) grows without bound —
    what the [rfdet trace] exporter wants. *)

val null : t
(** The shared disabled sink: [emit] is a no-op, [events] is empty. *)

val enabled : t -> bool

val emit : t -> tid:int -> time:int -> ?vc:int array -> Trace.kind -> unit
(** Append an event.  [vc]'s trailing zeros are trimmed (canonical form);
    the array is copied, so callers may pass live clocks. *)

val events : t -> Trace.event list
(** Retained events, oldest first.  [seq] fields are the global emission
    indices, so a truncated ring starts at [total t - length]. *)

val total : t -> int
(** Events emitted over the sink's lifetime, including dropped ones. *)

val dropped : t -> int

val clear : t -> unit
(** Drop all retained events and reset [total].  On [null]: a no-op. *)
