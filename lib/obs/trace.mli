(** Causal trace events.

    Every event is stamped with the emitting thread, its simulated-cycle
    clock at the moment of emission, and (when the emitting runtime keeps
    one) the thread's vector clock — so happens-before edges are
    recoverable from the trace alone: event [a] causally precedes event
    [b] iff [vc a < vc b] component-wise.

    Cycle fields always measure {e simulated} cycles, never host time, so
    a trace is a pure function of (workload, runtime, seed) and traces
    diff cleanly across code changes.  The [seq] field is the global
    emission index; it survives ring-buffer truncation, so a truncated
    trace still tells you how much was dropped.

    The canonical serialization is the line format of [to_line]:
    one event per line,

    {v <seq> <tid> <time> <vc|-> <kind> [key=value ...] v}

    with a fixed key order per kind and the vector clock printed as
    comma-separated components with trailing zeros trimmed ([-] when
    absent).  [of_line] parses exactly what [to_line] prints;
    [to_line (of_line l) = l] for canonical lines and
    [of_line (to_line e) = e] for events whose clock is trimmed (the
    sink trims at emission). *)

type kind =
  | Slice_open  (** a new slice began (monitoring re-armed) *)
  | Slice_close of { slice : int; pages : int; bytes : int; cycles : int }
      (** slice ended: diffed [pages] pages into [bytes] modified bytes;
          [slice] is the stored slice id, [-1] when the slice was empty
          and nothing was published; [cycles] is the whole close cost
          (diffs + GC + bookkeeping) *)
  | Snapshot of { page : int; cycles : int }
      (** first-touch page snapshot inside the current slice *)
  | Diff of { page : int; bytes : int; runs : int; cycles : int }
      (** one page diffed at slice close; [bytes]/[runs] describe the
          modification list found *)
  | Propagate of { slice : int; src : int; pages : int; bytes : int; cycles : int }
      (** slice [slice], created by thread [src], merged into the
          emitting thread's space ([-1] for baselines without slice ids) *)
  | Prop_page of { page : int; bytes : int }
      (** per-page payload of the propagation being applied — the raw
          material for the hottest-pages report *)
  | Gc of { examined : int; freed : int; cycles : int }
      (** metadata-space garbage collection at a slice close *)
  | Lock_acquire of { obj : string; handle : int; wait : int; queued : int }
      (** a synchronization object was acquired; [wait] is the full
          request-to-grant latency, [queued] the portion spent in the
          object's wait queue after the deterministic turn was granted *)
  | Lock_release of { obj : string; handle : int; hold : int }
      (** released after holding for [hold] cycles *)
  | Steal of { deque : int; victim : int; value : int }
      (** the emitting thread stole [value] from [victim]'s deque
          [deque] — the deterministic lowest-stamp victim *)
  | Kendo_wait of { cycles : int }
      (** the arbiter made the thread wait for its deterministic turn;
          stamped at the time the turn was requested *)
  | Barrier_stall of { barrier : int; cycles : int }
      (** stalled at a barrier (or global fence, [barrier = -1]) from
          arrival to release; stamped at arrival time *)
  | Fault of { op : string; action : string }
      (** fault injection fired at this operation
          ([crash]/[fail]/[delay]/[corrupt]) *)
  | Recovery of { action : string; target : int; attempt : int; cycles : int }
      (** the recovery manager acted: [action] is one of [restart],
          [heal], [victim], [quarantine], [rederive] or [backoff];
          [target] names the object acted on (tid for restart/victim,
          mutex handle for heal, slice id for quarantine/rederive);
          [attempt] is the retry attempt number (0 when n/a); [cycles]
          is the simulated time the action charged (backoff latency,
          re-derivation cost) *)
  | Span of { phase : string; req : int; a : int; b : int }
      (** one node of a per-request span tree, emitted by the serve
          workloads (see [Rfdet_obs.Span] for the phase vocabulary and
          payload meanings).  [req] is the global request sequence
          number; [a]/[b] are phase-specific payloads measured in
          {e virtual} per-worker cycles, so span payloads are identical
          across runtimes even though [time] stamps are not *)
  | Thread_exit
  | Thread_crash  (** the thread died under crash containment *)

type event = {
  seq : int;  (** global emission index, 0-based *)
  tid : int;
  time : int;  (** the thread's simulated clock at emission *)
  vc : int array;  (** vector clock, trailing zeros trimmed; [||] if none *)
  kind : kind;
}

val kind_name : kind -> string
(** The serialized tag, e.g. ["slice_close"]. *)

val kind_names : string list
(** Every [kind_name], in declaration order — the vocabulary accepted by
    [rfdet trace --filter-kind]. *)

val cycles_of : kind -> int
(** The event's cycle cost (0 for instant events). *)

val fields_of_kind : kind -> (string * string) list
(** The payload as (key, value) strings, in canonical key order. *)

val vc_to_string : int array -> string
(** Comma-separated components, or ["-"] for [[||]]. *)

val to_line : event -> string
(** Canonical one-line serialization (no trailing newline). *)

val of_line : string -> (event, string) result
(** Strict parser for [to_line]'s output. *)

val to_lines : event list -> string
(** All events, one per line, with a trailing newline ("" when empty). *)

val lines_bytes : event list -> int
(** [String.length (to_lines events)] without materializing the dump —
    the full-trace size a decision journal is compared against in the
    log-minimality benchmark ([rfdet bench]'s journal stanza). *)

val of_lines : string -> (event list, string) result
(** Parse a [to_lines] dump; blank lines are skipped. *)
