type hist = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;  (* bucket k counts samples in [2^(k-1), 2^k - 1] *)
}

type t = {
  counters_tbl : (string, int ref) Hashtbl.t;
  gauges_tbl : (string, int ref) Hashtbl.t;
  hists_tbl : (string, hist) Hashtbl.t;
}

type hist_summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let create () =
  {
    counters_tbl = Hashtbl.create 64;
    gauges_tbl = Hashtbl.create 16;
    hists_tbl = Hashtbl.create 16;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters_tbl name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some r -> !r
  | None -> 0

let set t name v =
  match Hashtbl.find_opt t.gauges_tbl name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges_tbl name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges_tbl name)

(* Bucket index of sample v: 0 for v = 0, otherwise 1 + floor(log2 v),
   so bucket k collects samples whose value needs k bits. *)
let bucket_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let nbuckets = 63

let observe t name v =
  let v = max 0 v in
  let h =
    match Hashtbl.find_opt t.hists_tbl name with
    | Some h -> h
    | None ->
      let h =
        {
          count = 0;
          sum = 0;
          min_v = max_int;
          max_v = 0;
          buckets = Array.make nbuckets 0;
        }
      in
      Hashtbl.replace t.hists_tbl name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let summarize (h : hist) =
  let buckets = ref [] in
  for k = nbuckets - 1 downto 0 do
    if h.buckets.(k) > 0 then
      let upper = if k = 0 then 0 else (1 lsl k) - 1 in
      buckets := (upper, h.buckets.(k)) :: !buckets
  done;
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0 else h.min_v);
    max = h.max_v;
    buckets = !buckets;
  }

let histogram t name =
  Option.map summarize (Hashtbl.find_opt t.hists_tbl name)

(* Upper-bound quantile estimate from the pow2 buckets: the estimate is
   the inclusive upper bound of the bucket holding the rank-⌈q·count⌉
   sample, clamped to the recorded max — so for the exact quantile v the
   estimate e satisfies v <= e <= 2v + 1. *)
let quantile (s : hist_summary) q =
  if s.count = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.count))) in
    let rec walk acc = function
      | [] -> s.max
      | (upper, n) :: rest ->
        let acc = acc + n in
        if acc >= rank then min upper s.max else walk acc rest
    in
    walk 0 s.buckets
  end

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted_bindings t.counters_tbl ( ! )

let gauges t = sorted_bindings t.gauges_tbl ( ! )

let histograms t = sorted_bindings t.hists_tbl summarize

(* --- JSON ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_int_object b name bindings =
  Buffer.add_string b (Printf.sprintf "  \"%s\": {" name);
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %d" (if i = 0 then "" else ",")
           (json_escape k) v))
    bindings;
  Buffer.add_string b (if bindings = [] then "}" else "\n  }")

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_int_object b "counters" (counters t);
  Buffer.add_string b ",\n";
  add_int_object b "gauges" (gauges t);
  Buffer.add_string b ",\n";
  Buffer.add_string b "  \"histograms\": {";
  let hs = histograms t in
  List.iteri
    (fun i (k, s) ->
      let mean =
        if s.count = 0 then 0.
        else float_of_int s.sum /. float_of_int s.count
      in
      Buffer.add_string b
        (Printf.sprintf
           "%s\n    \"%s\": { \"count\": %d, \"sum\": %d, \"min\": %d, \
            \"max\": %d, \"mean\": %.1f, \"p50\": %d, \"p99\": %d, \
            \"p999\": %d, \"buckets\": [%s] }"
           (if i = 0 then "" else ",")
           (json_escape k) s.count s.sum s.min s.max mean (quantile s 0.5)
           (quantile s 0.99) (quantile s 0.999)
           (String.concat ", "
              (List.map
                 (fun (le, n) -> Printf.sprintf "[%d, %d]" le n)
                 s.buckets))))
    hs;
  Buffer.add_string b (if hs = [] then "}" else "\n  }");
  Buffer.add_string b "\n}\n";
  Buffer.contents b
