type kind =
  | Slice_open
  | Slice_close of { slice : int; pages : int; bytes : int; cycles : int }
  | Snapshot of { page : int; cycles : int }
  | Diff of { page : int; bytes : int; runs : int; cycles : int }
  | Propagate of { slice : int; src : int; pages : int; bytes : int; cycles : int }
  | Prop_page of { page : int; bytes : int }
  | Gc of { examined : int; freed : int; cycles : int }
  | Lock_acquire of { obj : string; handle : int; wait : int; queued : int }
  | Lock_release of { obj : string; handle : int; hold : int }
  | Steal of { deque : int; victim : int; value : int }
  | Kendo_wait of { cycles : int }
  | Barrier_stall of { barrier : int; cycles : int }
  | Fault of { op : string; action : string }
  | Recovery of { action : string; target : int; attempt : int; cycles : int }
  | Span of { phase : string; req : int; a : int; b : int }
  | Thread_exit
  | Thread_crash

type event = {
  seq : int;
  tid : int;
  time : int;
  vc : int array;
  kind : kind;
}

let kind_name = function
  | Slice_open -> "slice_open"
  | Slice_close _ -> "slice_close"
  | Snapshot _ -> "snapshot"
  | Diff _ -> "diff"
  | Propagate _ -> "propagate"
  | Prop_page _ -> "prop_page"
  | Gc _ -> "gc"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_release _ -> "lock_release"
  | Steal _ -> "steal"
  | Kendo_wait _ -> "kendo_wait"
  | Barrier_stall _ -> "barrier_stall"
  | Fault _ -> "fault"
  | Recovery _ -> "recovery"
  | Span _ -> "span"
  | Thread_exit -> "thread_exit"
  | Thread_crash -> "thread_crash"

let kind_names =
  [
    "slice_open"; "slice_close"; "snapshot"; "diff"; "propagate";
    "prop_page"; "gc"; "lock_acquire"; "lock_release"; "steal";
    "kendo_wait"; "barrier_stall"; "fault"; "recovery"; "span";
    "thread_exit"; "thread_crash";
  ]

let cycles_of = function
  | Slice_close { cycles; _ }
  | Snapshot { cycles; _ }
  | Diff { cycles; _ }
  | Propagate { cycles; _ }
  | Gc { cycles; _ }
  | Kendo_wait { cycles }
  | Barrier_stall { cycles; _ }
  | Recovery { cycles; _ } -> cycles
  | Lock_acquire { wait; _ } -> wait
  | Lock_release _ | Steal _ | Slice_open | Prop_page _ | Fault _
  | Span _ | Thread_exit | Thread_crash -> 0

(* --- serialization --------------------------------------------------- *)

let vc_to_string vc =
  if Array.length vc = 0 then "-"
  else String.concat "," (List.map string_of_int (Array.to_list vc))

let fields_of_kind = function
  | Slice_open | Thread_exit | Thread_crash -> []
  | Slice_close { slice; pages; bytes; cycles } ->
    [ ("slice", string_of_int slice); ("pages", string_of_int pages);
      ("bytes", string_of_int bytes); ("cycles", string_of_int cycles) ]
  | Snapshot { page; cycles } ->
    [ ("page", string_of_int page); ("cycles", string_of_int cycles) ]
  | Diff { page; bytes; runs; cycles } ->
    [ ("page", string_of_int page); ("bytes", string_of_int bytes);
      ("runs", string_of_int runs); ("cycles", string_of_int cycles) ]
  | Propagate { slice; src; pages; bytes; cycles } ->
    [ ("slice", string_of_int slice); ("src", string_of_int src);
      ("pages", string_of_int pages); ("bytes", string_of_int bytes);
      ("cycles", string_of_int cycles) ]
  | Prop_page { page; bytes } ->
    [ ("page", string_of_int page); ("bytes", string_of_int bytes) ]
  | Gc { examined; freed; cycles } ->
    [ ("examined", string_of_int examined); ("freed", string_of_int freed);
      ("cycles", string_of_int cycles) ]
  | Lock_acquire { obj; handle; wait; queued } ->
    [ ("obj", obj); ("handle", string_of_int handle);
      ("wait", string_of_int wait); ("queued", string_of_int queued) ]
  | Lock_release { obj; handle; hold } ->
    [ ("obj", obj); ("handle", string_of_int handle);
      ("hold", string_of_int hold) ]
  | Steal { deque; victim; value } ->
    [ ("deque", string_of_int deque); ("victim", string_of_int victim);
      ("value", string_of_int value) ]
  | Kendo_wait { cycles } -> [ ("cycles", string_of_int cycles) ]
  | Barrier_stall { barrier; cycles } ->
    [ ("barrier", string_of_int barrier); ("cycles", string_of_int cycles) ]
  | Fault { op; action } -> [ ("op", op); ("action", action) ]
  | Recovery { action; target; attempt; cycles } ->
    [ ("action", action); ("target", string_of_int target);
      ("attempt", string_of_int attempt); ("cycles", string_of_int cycles) ]
  | Span { phase; req; a; b } ->
    [ ("phase", phase); ("req", string_of_int req);
      ("a", string_of_int a); ("b", string_of_int b) ]

let to_line e =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int e.seq);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int e.tid);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int e.time);
  Buffer.add_char b ' ';
  Buffer.add_string b (vc_to_string e.vc);
  Buffer.add_char b ' ';
  Buffer.add_string b (kind_name e.kind);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    (fields_of_kind e.kind);
  Buffer.contents b

(* --- parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let int_of s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "not an integer: %S" s)

let vc_of_string s =
  if s = "-" then Ok [||]
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest ->
        let* i = int_of p in
        go (i :: acc) rest
    in
    go [] parts

(* Parse [key=value] fields in the exact order [keys] prescribes. *)
let take_fields keys parts =
  let rec go acc keys parts =
    match keys, parts with
    | [], [] -> Ok (List.rev acc)
    | [], extra ->
      Error (Printf.sprintf "trailing fields: %s" (String.concat " " extra))
    | k :: _, [] -> Error (Printf.sprintf "missing field %s" k)
    | k :: krest, p :: prest -> (
      match String.index_opt p '=' with
      | None -> Error (Printf.sprintf "malformed field %S" p)
      | Some i ->
        let key = String.sub p 0 i in
        let v = String.sub p (i + 1) (String.length p - i - 1) in
        if key <> k then
          Error (Printf.sprintf "expected field %s, got %s" k key)
        else go (v :: acc) krest prest)
  in
  go [] keys parts

let token_ok s =
  s <> ""
  && String.for_all
       (fun c -> c <> ' ' && c <> '=' && c <> '\n' && c <> '\t')
       s

let kind_of_parts name parts =
  let ints keys k =
    let* vs = take_fields keys parts in
    let rec go acc = function
      | [] -> k (List.rev acc)
      | v :: rest ->
        let* i = int_of v in
        go (i :: acc) rest
    in
    go [] vs
  in
  match name with
  | "slice_open" ->
    let* _ = take_fields [] parts in
    Ok Slice_open
  | "thread_exit" ->
    let* _ = take_fields [] parts in
    Ok Thread_exit
  | "thread_crash" ->
    let* _ = take_fields [] parts in
    Ok Thread_crash
  | "slice_close" ->
    ints [ "slice"; "pages"; "bytes"; "cycles" ] (function
      | [ slice; pages; bytes; cycles ] ->
        Ok (Slice_close { slice; pages; bytes; cycles })
      | _ -> assert false)
  | "snapshot" ->
    ints [ "page"; "cycles" ] (function
      | [ page; cycles ] -> Ok (Snapshot { page; cycles })
      | _ -> assert false)
  | "diff" ->
    ints [ "page"; "bytes"; "runs"; "cycles" ] (function
      | [ page; bytes; runs; cycles ] -> Ok (Diff { page; bytes; runs; cycles })
      | _ -> assert false)
  | "propagate" ->
    ints [ "slice"; "src"; "pages"; "bytes"; "cycles" ] (function
      | [ slice; src; pages; bytes; cycles ] ->
        Ok (Propagate { slice; src; pages; bytes; cycles })
      | _ -> assert false)
  | "prop_page" ->
    ints [ "page"; "bytes" ] (function
      | [ page; bytes ] -> Ok (Prop_page { page; bytes })
      | _ -> assert false)
  | "gc" ->
    ints [ "examined"; "freed"; "cycles" ] (function
      | [ examined; freed; cycles ] -> Ok (Gc { examined; freed; cycles })
      | _ -> assert false)
  | "lock_acquire" ->
    let* vs = take_fields [ "obj"; "handle"; "wait"; "queued" ] parts in
    (match vs with
    | [ obj; handle; wait; queued ] ->
      if not (token_ok obj) then Error "empty obj token"
      else
        let* handle = int_of handle in
        let* wait = int_of wait in
        let* queued = int_of queued in
        Ok (Lock_acquire { obj; handle; wait; queued })
    | _ -> assert false)
  | "lock_release" ->
    let* vs = take_fields [ "obj"; "handle"; "hold" ] parts in
    (match vs with
    | [ obj; handle; hold ] ->
      if not (token_ok obj) then Error "empty obj token"
      else
        let* handle = int_of handle in
        let* hold = int_of hold in
        Ok (Lock_release { obj; handle; hold })
    | _ -> assert false)
  | "steal" ->
    ints [ "deque"; "victim"; "value" ] (function
      | [ deque; victim; value ] -> Ok (Steal { deque; victim; value })
      | _ -> assert false)
  | "kendo_wait" ->
    ints [ "cycles" ] (function
      | [ cycles ] -> Ok (Kendo_wait { cycles })
      | _ -> assert false)
  | "barrier_stall" ->
    ints [ "barrier"; "cycles" ] (function
      | [ barrier; cycles ] -> Ok (Barrier_stall { barrier; cycles })
      | _ -> assert false)
  | "fault" ->
    let* vs = take_fields [ "op"; "action" ] parts in
    (match vs with
    | [ op; action ] ->
      if not (token_ok op && token_ok action) then Error "empty fault token"
      else Ok (Fault { op; action })
    | _ -> assert false)
  | "recovery" ->
    let* vs = take_fields [ "action"; "target"; "attempt"; "cycles" ] parts in
    (match vs with
    | [ action; target; attempt; cycles ] ->
      if not (token_ok action) then Error "empty recovery token"
      else
        let* target = int_of target in
        let* attempt = int_of attempt in
        let* cycles = int_of cycles in
        Ok (Recovery { action; target; attempt; cycles })
    | _ -> assert false)
  | "span" ->
    let* vs = take_fields [ "phase"; "req"; "a"; "b" ] parts in
    (match vs with
    | [ phase; req; a; b ] ->
      if not (token_ok phase) then Error "empty span phase token"
      else
        let* req = int_of req in
        let* a = int_of a in
        let* b = int_of b in
        Ok (Span { phase; req; a; b })
    | _ -> assert false)
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let of_line line =
  match String.split_on_char ' ' line with
  | seq :: tid :: time :: vc :: name :: rest ->
    let* seq = int_of seq in
    let* tid = int_of tid in
    let* time = int_of time in
    let* vc = vc_of_string vc in
    let* kind = kind_of_parts name rest in
    Ok { seq; tid; time; vc; kind }
  | _ -> Error (Printf.sprintf "malformed event line %S" line)

let to_lines events =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (to_line e);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let lines_bytes events =
  List.fold_left (fun acc e -> acc + String.length (to_line e) + 1) 0 events

let of_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | l :: rest ->
      let* e = of_line l in
      go (e :: acc) rest
  in
  go [] lines
