type t = {
  on : bool;
  capacity : int;  (* 0 = unbounded *)
  mutable items : Trace.event option array;
  mutable len : int;  (* filled slots (unbounded growth mode) *)
  mutable next : int;  (* ring write index (bounded mode) *)
  mutable total : int;
}

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Sink.create: capacity < 0";
  {
    on = true;
    capacity;
    items = Array.make (if capacity > 0 then capacity else 1024) None;
    len = 0;
    next = 0;
    total = 0;
  }

let null =
  { on = false; capacity = 1; items = [||]; len = 0; next = 0; total = 0 }

let enabled t = t.on

let trim_vc vc =
  let n = ref (Array.length vc) in
  while !n > 0 && vc.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length vc then Array.copy vc else Array.sub vc 0 !n

let emit t ~tid ~time ?(vc = [||]) kind =
  if t.on then begin
    let e = { Trace.seq = t.total; tid; time; vc = trim_vc vc; kind } in
    t.total <- t.total + 1;
    if t.capacity > 0 then begin
      t.items.(t.next) <- Some e;
      t.next <- (t.next + 1) mod t.capacity
    end
    else begin
      if t.len = Array.length t.items then begin
        let bigger = Array.make (2 * t.len) None in
        Array.blit t.items 0 bigger 0 t.len;
        t.items <- bigger
      end;
      t.items.(t.len) <- Some e;
      t.len <- t.len + 1
    end
  end

let events t =
  if not t.on then []
  else if t.capacity > 0 then
    List.filter_map
      (fun i -> t.items.((t.next + i) mod t.capacity))
      (List.init t.capacity (fun i -> i))
  else List.filter_map (fun i -> t.items.(i)) (List.init t.len (fun i -> i))

let total t = t.total

let dropped t =
  if t.capacity > 0 then max 0 (t.total - t.capacity) else 0

let clear t =
  (* [null] is shared across every run (and, with --jobs, every domain);
     it holds nothing, so clearing it must not write to it *)
  if t.on then begin
    Array.fill t.items 0 (Array.length t.items) None;
    t.len <- 0;
    t.next <- 0;
    t.total <- 0
  end
