(** Attribution reports derived from a causal trace.

    Mirrors the paper's Figure 7: total execution time decomposes into
    compute, deterministic-wait (Kendo turn waits + lock queueing +
    barrier stalls), propagation, diffing, GC and monitoring (snapshot +
    slice-close bookkeeping), with compute as the residual.  All numbers
    are simulated cycles, so reports are deterministic. *)

type breakdown = {
  total : int;  (** sum of final per-thread clocks *)
  compute : int;  (** residual: total minus everything below *)
  wait : int;  (** Kendo turn waits + lock queue waits + barrier stalls *)
  propagate : int;
  diff : int;
  gc : int;
  monitor : int;  (** snapshots + slice-close bookkeeping beyond diff/GC *)
  recover : int;
      (** time lost to recovery: restart backoff, re-derivation,
          victim/heal bookkeeping (sum of [Recovery] event cycles) *)
}

val breakdown : total:int -> Trace.event list -> breakdown
(** [total] is the denominator (sum of final thread clocks); [compute]
    clamps at 0 if attributed costs exceed it. *)

type lock_row = {
  obj : string;  (** object class, e.g. ["mutex"] *)
  handle : int;
  acquires : int;
  contended : int;  (** acquires with [wait > 0] *)
  wait : int;  (** total request-to-grant cycles *)
  queued : int;  (** portion spent queued behind the holder *)
  hold : int;  (** total cycles held *)
}

val lock_table : Trace.event list -> lock_row list
(** One row per (obj, handle), sorted by descending [wait] then
    (obj, handle) for determinism. *)

val hot_pages : ?top:int -> Trace.event list -> (int * int * int) list
(** [(page, bytes, times)] ranked by propagated bytes (descending, page
    id ascending on ties); [top] defaults to 10. *)

val fill_metrics : Metrics.t -> Trace.event list -> unit
(** Derive distributional metrics from the trace: histograms
    [slice.bytes], [slice.pages], [diff.bytes], [propagate.cycles],
    [propagate.bytes], [lock.wait], [lock.hold], [kendo.wait],
    [barrier.stall], [recovery.cycles]; counters [trace.events],
    [trace.<kind>] and [recovery.<action>]. *)

val render_breakdown : breakdown -> string
(** Figure-7-style table: one line per component with cycles and share
    of total. *)

val render_lock_table : lock_row list -> string

val render_hot_pages : (int * int * int) list -> string

val render_quantiles : Metrics.t -> string list -> string
(** One row per named histogram present in the registry: count, mean and
    the p50/p99/p999 upper-bound estimates ([Metrics.quantile]).  Names
    absent from the registry are skipped. *)
