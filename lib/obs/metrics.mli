(** Deterministic metrics registry: named counters, gauges and
    power-of-two histograms, serializable to JSON.

    This subsumes the flat [Profile] counter struct: [Profile.fill_metrics]
    mirrors every profile field into [profile.*] counters, and
    [Report.fill_metrics] derives distributional metrics (propagation
    latency per applied slice, bytes/pages per slice, per-lock-site hold
    and wait time) from a causal trace.

    Everything here is integer-valued and insertion-order-free — JSON
    output sorts names — so registries built from deterministic runs
    serialize byte-identically. *)

type t

val create : unit -> t

(** {1 Counters} — monotonically accumulated values. *)

val incr : ?by:int -> t -> string -> unit

val counter : t -> string -> int
(** 0 when never incremented. *)

(** {1 Gauges} — last-write-wins values. *)

val set : t -> string -> int -> unit

val gauge : t -> string -> int option

(** {1 Histograms} — power-of-two buckets with count/sum/min/max. *)

val observe : t -> string -> int -> unit
(** Record a sample (negative samples clamp to 0). *)

type hist_summary = {
  count : int;
  sum : int;
  min : int;  (** 0 when empty *)
  max : int;
  buckets : (int * int) list;
      (** (inclusive upper bound [2^k - 1], samples) — nonempty buckets
          only, ascending *)
}

val histogram : t -> string -> hist_summary option

val quantile : hist_summary -> float -> int
(** [quantile s q] — upper-bound estimate of the q-quantile (q in [0,1],
    clamped) from the power-of-two buckets: the inclusive upper bound of
    the bucket holding the rank-⌈q·count⌉ sample, clamped to [s.max].
    For the exact (sorted-sample, ceiling-rank) quantile v the estimate
    e satisfies v <= e <= 2v + 1.  0 when the histogram is empty. *)

(** {1 Introspection and output} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * int) list

val histograms : t -> (string * hist_summary) list

val to_json : t -> string
(** A stable JSON object: {["{ \"counters\": {...}, \"gauges\": {...},
    \"histograms\": {...} }"]} with keys sorted. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared by the
    other obs serializers). *)
