(** Per-request span trees, reconstructed offline from the causal trace.

    The serve workloads emit one [Trace.Span] node per request phase
    through the inert sink; [collect] folds a trace back into one
    {!record} per committed request.  Every cycle figure is a {e virtual}
    per-worker cycle — the clock domain of the server's deadlines,
    backoff and latency quantiles — so records (and everything derived
    from them: critical paths, exemplars, JSON) are bit-identical across
    runtimes, schedules and [--jobs] counts even though the engine time
    stamps on the underlying events are not.

    Crash-and-replay emits a request's tree twice; [collect] keeps the
    last completed emission, exactly mirroring the server's exactly-once
    commit protocol.  Requests whose tree never completed (a crash the
    plan did not recover, or a saturated trace ring) are counted in
    [incomplete] rather than silently dropped. *)

type record = {
  req : int;  (** global request sequence number *)
  worker : int;  (** tid of the committing worker *)
  arrival : int;  (** arrival cycle (virtual clock) *)
  outcome : int;  (** outcome code, [outcome_name] for the label *)
  latency : int;  (** measured latency in virtual cycles *)
  attempts : int;  (** lock attempts (retries = attempts - 1) *)
  transitions : int;  (** breaker transitions during this request *)
  queue : int;  (** cycles queued before admission *)
  backoff : int;  (** cycles spent in retry backoff *)
  service : int;  (** cycles of full service *)
  stale : int;  (** cycles of degraded stale service *)
  shed : int;  (** cycles of shed bookkeeping *)
  events : Trace.event list;  (** this request's span nodes, in order *)
}

type t = {
  complete : record list;  (** one per committed request, sorted by req *)
  incomplete : int;
      (** requests with span nodes but no completed tree *)
}

val collect : Trace.event list -> t
(** Fold a trace (any kinds; non-span events are ignored) into
    per-request records. *)

val outcome_name : int -> string
(** The server's wire encoding: 1 served, 2 stale, 3 shed, 4 timed_out,
    5 failed. *)

val depth : record -> int
(** Tree depth: 1 + attempts — the "deepest exemplar" sort key. *)

val render_tree : Buffer.t -> record -> unit
(** ASCII span tree.  Prints virtual-cycle payloads only (never engine
    stamps), so renders are byte-identical across runtimes. *)
