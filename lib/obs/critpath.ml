(* Offline critical-path walker over per-request span trees.

   Because the whole stack is deterministic, the causal trace is a
   complete record: walking backwards from a request's response node
   visits every segment that delayed it, and the segment cycles must sum
   *bit-exactly* to the measured latency — any residual would mean a
   phase of the request's life is unaccounted for.  [walk] enforces that
   invariant and fails loudly instead of attributing approximately. *)

type attribution = {
  req : int;
  worker : int;
  arrival : int;
  outcome : int;
  latency : int;
  attempts : int;
  transitions : int;
  segments : (string * int) list; (* canonical label order *)
}

let segment_labels = [ "queue"; "backoff"; "service"; "stale"; "shed" ]

let walk (r : Span.record) =
  (* Traverse the request's nodes backwards from the response: each node
     carries the virtual cycles its phase charged, so the reverse walk
     reconstructs the exact segment vector of the latency. *)
  let queue = ref 0
  and backoff = ref 0
  and service = ref 0
  and stale = ref 0
  and shed = ref 0 in
  let seen_response = ref false
  and seen_admit = ref false in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Span { phase; b; _ } -> (
        match phase with
        | "response" -> seen_response := true
        | "admit" ->
          seen_admit := true;
          queue := !queue + b
        | "backoff" -> backoff := !backoff + b
        | "service" -> service := !service + b
        | "stale" -> stale := !stale + b
        | "shed" -> shed := !shed + b
        | _ -> ())
      | _ -> ())
    (List.rev r.events);
  if not (!seen_response && !seen_admit) then
    Error (Printf.sprintf "req %d: span tree is missing admit/response" r.req)
  else
    let segments =
      [
        ("queue", !queue);
        ("backoff", !backoff);
        ("service", !service);
        ("stale", !stale);
        ("shed", !shed);
      ]
    in
    let sum = List.fold_left (fun acc (_, c) -> acc + c) 0 segments in
    if sum <> r.latency then
      Error
        (Printf.sprintf
           "req %d: critical-path segments sum to %d but measured latency \
            is %d"
           r.req sum r.latency)
    else
      Ok
        {
          req = r.req;
          worker = r.worker;
          arrival = r.arrival;
          outcome = r.outcome;
          latency = r.latency;
          attempts = r.attempts;
          transitions = r.transitions;
          segments;
        }

let walk_all records =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest -> (
      match walk r with
      | Ok a -> go (a :: acc) rest
      | Error _ as e -> e)
  in
  go [] records

(* --- cohort aggregation ---------------------------------------------- *)

type cohort = {
  label : string;
  per_mille : int;
  count : int;
  threshold : int;
  total_latency : int;
  cycles : (string * int) list;
  shares_pm : (string * int) list;
}

let cohort ~label ~per_mille atts =
  match atts with
  | [] ->
    {
      label;
      per_mille;
      count = 0;
      threshold = 0;
      total_latency = 0;
      cycles = List.map (fun l -> (l, 0)) segment_labels;
      shares_pm = List.map (fun l -> (l, 0)) segment_labels;
    }
  | _ ->
    let lats =
      List.sort compare (List.map (fun a -> a.latency) atts)
      |> Array.of_list
    in
    let n = Array.length lats in
    (* nearest-rank quantile in pure integer arithmetic *)
    let threshold = lats.(min (n - 1) (per_mille * n / 1000)) in
    let members = List.filter (fun a -> a.latency >= threshold) atts in
    let count = List.length members in
    let total_latency =
      List.fold_left (fun acc a -> acc + a.latency) 0 members
    in
    let sum label =
      List.fold_left
        (fun acc a -> acc + List.assoc label a.segments)
        0 members
    in
    let cycles = List.map (fun l -> (l, sum l)) segment_labels in
    let shares_pm =
      List.map
        (fun (l, c) ->
          (l, if total_latency = 0 then 0 else c * 1000 / total_latency))
        cycles
    in
    { label; per_mille; count; threshold; total_latency; cycles; shares_pm }

let cohorts atts =
  [
    cohort ~label:"p50" ~per_mille:500 atts;
    cohort ~label:"p99" ~per_mille:990 atts;
    cohort ~label:"p999" ~per_mille:999 atts;
  ]

(* --- exemplars ------------------------------------------------------- *)

let take k l =
  let rec go k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k l

let top_slowest k atts =
  take k
    (List.sort
       (fun x y ->
         match compare y.latency x.latency with
         | 0 -> compare x.req y.req
         | c -> c)
       atts)

let top_deepest k atts =
  take k
    (List.sort
       (fun x y ->
         match compare y.attempts x.attempts with
         | 0 -> (
           match compare y.latency x.latency with
           | 0 -> compare x.req y.req
           | c -> c)
         | c -> c)
       atts)

(* --- canonical JSON -------------------------------------------------- *)

(* Everything below prints integers and fixed label sets in a fixed
   order — no floats, no timestamps, no runtime names — so the document
   is byte-identical across runtimes, job counts and repeat runs. *)

let int_obj pairs =
  "{ "
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) pairs)
  ^ " }"

let attribution_json a =
  Printf.sprintf
    "{ \"req\": %d, \"worker\": %d, \"outcome\": \"%s\", \"latency\": %d, \
     \"attempts\": %d, \"transitions\": %d, \"segments\": %s, \"replay\": \
     { \"window\": [%d, %d] } }"
    a.req a.worker
    (Span.outcome_name a.outcome)
    a.latency a.attempts a.transitions (int_obj a.segments) a.arrival
    (a.arrival + a.latency)

let cohort_json c =
  Printf.sprintf
    "{ \"count\": %d, \"threshold\": %d, \"total_latency\": %d, \
     \"cycles\": %s, \"shares_pm\": %s }"
    c.count c.threshold c.total_latency (int_obj c.cycles)
    (int_obj c.shares_pm)

let json ~meta ~top atts =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"rfdet-spans/1\"";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf ",\n  \"%s\": %s" k v))
    meta;
  Buffer.add_string b
    (Printf.sprintf ",\n  \"spanned\": %d" (List.length atts));
  Buffer.add_string b ",\n  \"attribution\": {";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %s"
           (if i = 0 then "" else ",")
           c.label (cohort_json c)))
    (cohorts atts);
  Buffer.add_string b "\n  }";
  let emit_list name xs =
    Buffer.add_string b (Printf.sprintf ",\n  \"%s\": [" name);
    List.iteri
      (fun i a ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    %s"
             (if i = 0 then "" else ",")
             (attribution_json a)))
      xs;
    Buffer.add_string b (if xs = [] then "]" else "\n  ]")
  in
  emit_list "top_slowest" (top_slowest top atts);
  emit_list "top_deepest" (top_deepest top atts);
  Buffer.add_string b "\n}\n";
  Buffer.contents b
