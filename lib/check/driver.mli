(** The conformance suite behind [rfdet check] and the CI job.

    Composition:
    - {b exhaustive}: every synchronization interleaving of each micro
      workload at 2 threads, under the DLRC oracle, with sleep-set
      pruning (the schedule counts are reported — the determinism
      theorem is checked against the full enumeration);
    - {b sampled}: seeded random schedules for configurations too big to
      enumerate (micros at 3 threads, racey at 2);
    - {b differential}: cross-runtime signature equality on race-free
      workloads, per-runtime stability on racey, naive-model agreement
      everywhere ([Differential]);
    - {b corpus}: every minimized trace under [test/corpus/] replays
      cleanly with its expected signature ([Trace], [Explore.replay]). *)

type summary = {
  explored : (string * Explore.stats) list;  (** workload -> DFS stats *)
  sampled : (string * Explore.stats) list;
  differential : Differential.report list;
  corpus : (string * string option) list;
      (** trace file -> [None] when clean, [Some error] otherwise *)
  ok : bool;
}

val conformance :
  ?exhaustive:bool ->
  ?samples:int ->
  ?sample_seed:int64 ->
  ?corpus_dir:string ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  unit ->
  summary
(** Defaults: exhaustive on, 200 samples per sampled configuration,
    sample seed 2026, no corpus directory (skipped when absent),
    [progress] ignored, [jobs = 1].  [ok] is false on any exploration
    failure, differential failure or corpus error.  [jobs] parallelizes
    the sampled and differential sweeps across host domains (the
    exhaustive DFS is inherently sequential — each branch's sleep sets
    depend on its siblings); the summary is byte-identical for every
    [jobs] value. *)

val pp_summary : Format.formatter -> summary -> unit
