module Engine = Rfdet_sim.Engine
module Runner = Rfdet_harness.Runner
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry
module Dlrc_model = Rfdet_core.Dlrc_model

type report = {
  workload : string;
  threads : int;
  signatures : (string * string) list;
  unstable : string list;
  disagree : (string * string * string * string) option;
  expect_agree : bool;
  model_diverged : bool;
  ok : bool;
}

let runtimes =
  [ Runner.rfdet_ci; Runner.rfdet_pf; Runner.Coredet; Runner.Dthreads ]

let default_seeds = [ 1L; 7L; 1234L ]

(* The reference model has no Runner constructor (it is a test oracle,
   not a benchmarked runtime), so drive the engine directly. *)
let model_signature ~threads ~scale ~input_seed (wl : Workload.t) =
  let wcfg = { Workload.threads; scale; input_seed } in
  Engine.output_signature (Engine.run Dlrc_model.make ~main:(wl.Workload.main wcfg))

let check ?(threads = 2) ?(scale = 1.0) ?(input_seed = 42L)
    ?(seeds = default_seeds) ?(jitter = 9.0) ?(expect_agree = true)
    ?(model = true) ?(jobs = 1) (wl : Workload.t) =
  (* Flatten the runtime x scheduler-seed matrix, run the cells on up to
     [jobs] domains (each Runner.run builds a fresh engine), and regroup
     in matrix order — per_rt is identical for every job count. *)
  let cells =
    List.concat_map (fun rt -> List.map (fun s -> (rt, s)) seeds) runtimes
  in
  let sigs =
    Rfdet_par.Par.map_ordered ~jobs
      (fun (rt, sched_seed) ->
        (Runner.run ~threads ~scale ~input_seed ~sched_seed ~jitter rt wl)
          .Runner.signature)
      cells
  in
  let width = List.length seeds in
  let rec regroup rts sigs =
    match rts with
    | [] -> []
    | rt :: rest ->
      let this = List.filteri (fun i _ -> i < width) sigs in
      let after = List.filteri (fun i _ -> i >= width) sigs in
      (Runner.runtime_name rt, this) :: regroup rest after
  in
  let per_rt = regroup runtimes sigs in
  let signatures = List.map (fun (n, sigs) -> (n, List.hd sigs)) per_rt in
  let unstable =
    List.filter_map
      (fun (n, sigs) ->
        if List.for_all (( = ) (List.hd sigs)) sigs then None else Some n)
      per_rt
  in
  let disagree =
    match signatures with
    | [] -> None
    | (n0, s0) :: rest ->
      List.find_opt (fun (_, s) -> s <> s0) rest
      |> Option.map (fun (n, s) -> (n0, s0, n, s))
  in
  let model_diverged =
    model
    &&
    let ms = model_signature ~threads ~scale ~input_seed wl in
    match List.assoc_opt "rfdet-ci" signatures with
    | Some s -> ms <> s
    | None -> false
  in
  let ok =
    unstable = []
    && (not model_diverged)
    && ((not expect_agree) || disagree = None)
  in
  {
    workload = wl.Workload.name;
    threads;
    signatures;
    unstable;
    disagree;
    expect_agree;
    model_diverged;
    ok;
  }

let race_free_suite ?(threads = 2) ?(jobs = 1) () =
  List.map (fun wl -> check ~threads ~jobs wl) Registry.micro

let racy_suite ?(threads = 2) ?(jobs = 1) () =
  [ check ~threads ~jobs ~expect_agree:false (Registry.find "racey") ]

let pp_report ppf r =
  let short s = if String.length s > 12 then String.sub s 0 12 else s in
  Format.fprintf ppf "%-14s %d threads: %s" r.workload r.threads
    (if r.ok then "ok" else "FAIL");
  List.iter
    (fun (n, s) -> Format.fprintf ppf " %s=%s" n (short s))
    r.signatures;
  if r.unstable <> [] then
    Format.fprintf ppf " unstable:[%s]" (String.concat "," r.unstable);
  (match r.disagree with
  | Some (a, sa, b, sb) when r.expect_agree ->
    Format.fprintf ppf " disagree: %s=%s vs %s=%s" a (short sa) b (short sb)
  | _ -> ());
  if r.model_diverged then Format.fprintf ppf " model-diverged"
