module Engine = Rfdet_sim.Engine
module Op = Rfdet_sim.Op
module Options = Rfdet_core.Options
module Rt = Rfdet_core.Rfdet_runtime
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry
module Det_rng = Rfdet_util.Det_rng
module Par = Rfdet_par.Par

type config = {
  opts : Options.t;
  threads : int;
  scale : float;
  input_seed : int64;
  oracle : bool;
  prune : bool;
  max_depth : int;
  max_preemptions : int;
  max_schedules : int;
}

let default_config =
  {
    opts = Options.ci;
    threads = 2;
    scale = 1.0;
    input_seed = 42L;
    oracle = true;
    prune = true;
    max_depth = 400;
    max_preemptions = max_int;
    max_schedules = 20_000;
  }

type failure = { f_trace : Trace.t; f_reason : string }

type stats = {
  schedules : int;
  pruned : int;
  deepest : int;
  truncated : bool;
  reference : string option;
  failures : failure list;
}

(* ---------- segment footprints ---------- *)

(* The visible action of a segment is its closing boundary operation.
   Two segments commute when their closing operations are on provably
   different objects; everything we cannot prove is conservatively
   [F_top] (dependent with everything).  A segment closed by a thread
   exit is [F_top] too: exits publish the final slice and wake
   joiners. *)
type footprint =
  | F_mutex of int
  | F_atomic of int
  | F_rwlock of int
  | F_sem of int
  | F_top

let footprint_of_op (op : Op.t) =
  match op with
  | Op.Lock m | Op.Unlock m -> F_mutex m
  | Op.Atomic { addr; _ } -> F_atomic addr
  | Op.Rdlock rw | Op.Wrlock rw | Op.Rwunlock rw -> F_rwlock rw
  | Op.Sem_acquire s | Op.Sem_post s -> F_sem s
  (* Deque steals scan every deque for a victim, so deque ops stay
     [F_top]; condvar ops interact with the paired mutex, likewise. *)
  | _ -> F_top

let independent a b =
  match (a, b) with F_top, _ | _, F_top -> false | _ -> a <> b

(* ---------- one schedule ---------- *)

exception Sleep_blocked
exception Replay_mismatch of string

(* One recorded choice point.  Points where only one thread is ready are
   not recorded (there is nothing to decide, and skipping them keeps
   traces short); the recording rule is a deterministic function of the
   earlier choices, so positional replay stays aligned. *)
type point = {
  p_ready : int list;
  p_chosen : int;
  p_last : int;
  p_last_ready : bool;
  p_sleep : (int * footprint) list;  (* sleep set in force at this choice *)
  p_ready_seg : (int * int) list;  (* tid -> its segment index here *)
  mutable p_foot : footprint option;  (* chosen's segment, filled at close *)
}

type run_outcome =
  | R_ok of string  (* output signature *)
  | R_pruned
  | R_oracle of string
  | R_deadlock of string
  | R_mismatch of string
  | R_error of string

type run = { ro : run_outcome; points : point array }

type mode = M_default | M_random of Det_rng.t

(* Execute one schedule.  [prescribed] pins the first recorded choices;
   after it runs out the choice falls to [mode].  Sleep-set state:
   [birth_sleep] is the sleep set in force at the first free choice
   (= once the segment opened by the last prescribed point closes);
   closing a segment wakes every sleeper whose footprint is dependent
   on it. *)
let run_once ?policy_override ~(cfg : config) ~(wl : Workload.t)
    ~(streams : (int * int, footprint) Hashtbl.t) ~(prescribed : int array)
    ~(birth_sleep : (int * footprint) list) ~(strict : bool) ~(mode : mode)
    ~(prune : bool) () : run =
  let plen = Array.length prescribed in
  let points = ref [] in
  let npoints = ref 0 in
  let sleep = ref (if plen = 0 then birth_sleep else []) in
  let free = ref (plen = 0) in
  (* recorded index of the previous point, if it was recorded *)
  let last_rec = ref None in
  let seg_count : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let last_op : (int, Op.t) Hashtbl.t = Hashtbl.create 8 in
  let engine_ref = ref None in
  let seg_index tid =
    Option.value (Hashtbl.find_opt seg_count tid) ~default:0
  in
  let close_segment tid ~ready =
    let f =
      let finished =
        match !engine_ref with
        | Some eng ->
          (not ready) && (Engine.is_finished eng tid || Engine.is_crashed eng tid)
        | None -> false
      in
      if finished then F_top
      else
        match Hashtbl.find_opt last_op tid with
        | Some op -> footprint_of_op op
        | None -> F_top
    in
    (match !points with
    | p :: _ when p.p_chosen = tid && p.p_foot = None -> p.p_foot <- Some f
    | _ -> ());
    let idx = seg_index tid in
    if not (Hashtbl.mem streams (tid, idx)) then
      Hashtbl.replace streams (tid, idx) f;
    Hashtbl.replace seg_count tid (idx + 1);
    if !free then sleep := List.filter (fun (_, fx) -> independent fx f) !sleep
    else if !last_rec = Some (plen - 1) then begin
      (* the last prescribed segment just closed: install the branch's
         birth sleep set, then let this segment wake its dependents *)
      free := true;
      sleep := List.filter (fun (_, fx) -> independent fx f) birth_sleep
    end
  in
  let default_choice (sp : Engine.sched_point) =
    let sleeping = if prune then List.map fst !sleep else [] in
    match
      List.filter (fun tid -> not (List.mem tid sleeping)) sp.Engine.sp_ready
    with
    | [] -> raise Sleep_blocked
    | avail ->
      if List.mem sp.Engine.sp_last avail then sp.Engine.sp_last
      else List.hd avail
  in
  let choose (sp : Engine.sched_point) =
    if sp.Engine.sp_last_ready && not sp.Engine.sp_last_boundary then
      (* mid-segment: between boundaries the interleaving cannot matter *)
      sp.Engine.sp_last
    else begin
      if sp.Engine.sp_last >= 0 then
        close_segment sp.Engine.sp_last ~ready:sp.Engine.sp_last_ready;
      match sp.Engine.sp_ready with
      | [ only ] ->
        if prune && List.mem_assoc only !sleep then raise Sleep_blocked;
        last_rec := None;
        only
      | ready ->
        let idx = !npoints in
        let chosen =
          if idx < plen then begin
            let c = prescribed.(idx) in
            if List.mem c ready then c
            else if strict then
              raise
                (Replay_mismatch
                   (Printf.sprintf
                      "choice %d prescribes tid %d but ready set is {%s}" idx c
                      (String.concat "," (List.map string_of_int ready))))
            else default_choice sp
          end
          else
            match mode with
            | M_default -> default_choice sp
            | M_random rng -> List.nth ready (Det_rng.int rng (List.length ready))
        in
        points :=
          {
            p_ready = ready;
            p_chosen = chosen;
            p_last = sp.Engine.sp_last;
            p_last_ready = sp.Engine.sp_last_ready;
            p_sleep = !sleep;
            p_ready_seg = List.map (fun tid -> (tid, seg_index tid)) ready;
            p_foot = None;
          }
          :: !points;
        incr npoints;
        last_rec := Some idx;
        chosen
    end
  in
  let make_policy eng =
    engine_ref := Some eng;
    match policy_override with
    | Some f -> f eng
    | None ->
      if cfg.oracle then Oracle.wrap ~opts:cfg.opts eng
      else Rt.make ~opts:cfg.opts eng
  in
  let econfig =
    {
      Engine.default_config with
      seed = 1L;
      jitter_mean = 0.;
      choose = Some choose;
      observe = Some (fun ~tid op -> Hashtbl.replace last_op tid op);
    }
  in
  let wcfg =
    {
      Workload.threads = cfg.threads;
      scale = cfg.scale;
      input_seed = cfg.input_seed;
    }
  in
  let ro =
    match Engine.run ~config:econfig make_policy ~main:(wl.Workload.main wcfg) with
    | res -> R_ok (Engine.output_signature res)
    | exception Sleep_blocked -> R_pruned
    | exception Replay_mismatch m -> R_mismatch m
    | exception Oracle.Divergence m -> R_oracle m
    | exception Engine.Thread_failure (_, Oracle.Divergence m) -> R_oracle m
    | exception Engine.Deadlock m -> R_deadlock m
    | exception Engine.Runaway -> R_error "runaway: max_ops exceeded"
    | exception Engine.Thread_failure (tid, e) ->
      R_error (Printf.sprintf "thread %d failed: %s" tid (Printexc.to_string e))
  in
  { ro; points = Array.of_list (List.rev !points) }

let choices_of run = Array.to_list (Array.map (fun p -> p.p_chosen) run.points)

(* ---------- exhaustive DFS ---------- *)

type work = { wi_prefix : int array; wi_birth : (int * footprint) list }

(* Push the unexplored siblings of every free choice of [run], deepest
   first so the stack pops them in DFS order.  Sibling [a_k] at point
   [j] is born asleep on the already-explored choices at [j] (the chosen
   thread, plus earlier alternatives whose next-segment footprint the
   [streams] map has learned from prior runs — per-thread op streams are
   schedule-independent in a correct DMT, which is what makes them
   learnable). *)
let expand ~(cfg : config) ~prune ~streams ~(run : run) ~prefix_len ~push =
  let points = run.points in
  let n = Array.length points in
  let preempt (p : point) alt =
    p.p_last >= 0 && p.p_last_ready && alt <> p.p_last
  in
  let cum = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    cum.(j + 1) <-
      (cum.(j) + if preempt points.(j) points.(j).p_chosen then 1 else 0)
  done;
  let choices = Array.map (fun p -> p.p_chosen) points in
  for j = min (n - 1) (cfg.max_depth - 1) downto prefix_len do
    let p = points.(j) in
    let sleeping = if prune then List.map fst p.p_sleep else [] in
    let alts =
      List.filter
        (fun a ->
          a <> p.p_chosen
          && (not (List.mem a sleeping))
          && cum.(j) + (if preempt p a then 1 else 0) <= cfg.max_preemptions)
        p.p_ready
    in
    let earlier =
      ref (match p.p_foot with Some f -> [ (p.p_chosen, f) ] | None -> [])
    in
    let items =
      List.map
        (fun a ->
          let birth = if prune then p.p_sleep @ !earlier else [] in
          (if prune then
             match List.assoc_opt a p.p_ready_seg with
             | Some segidx -> (
               match Hashtbl.find_opt streams (a, segidx) with
               | Some f -> earlier := (a, f) :: !earlier
               | None -> ())
             | None -> ());
          let prefix = Array.append (Array.sub choices 0 j) [| a |] in
          { wi_prefix = prefix; wi_birth = birth })
        alts
    in
    List.iter push (List.rev items)
  done

let max_recorded_failures = 100

let explore ?(config = default_config) wl =
  let cfg = config in
  let streams = Hashtbl.create 64 in
  let stack = ref [ { wi_prefix = [||]; wi_birth = [] } ] in
  let schedules = ref 0 in
  let pruned = ref 0 in
  let deepest = ref 0 in
  let truncated = ref false in
  let reference = ref None in
  let failures = ref [] in
  let nfailures = ref 0 in
  let record_failure run reason =
    incr nfailures;
    if !nfailures <= max_recorded_failures then
      let f_trace =
        Trace.make ~workload:wl.Workload.name ~threads:cfg.threads
          ~scale:cfg.scale ~input_seed:cfg.input_seed
          ~runtime:(Options.name cfg.opts) ~choices:(choices_of run)
          ?expect:!reference ~note:reason ()
      in
      failures := { f_trace; f_reason = reason } :: !failures
  in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | _ when !schedules >= cfg.max_schedules ->
      truncated := true;
      continue := false
    | item :: rest ->
      stack := rest;
      let run =
        run_once ~cfg ~wl ~streams ~prescribed:item.wi_prefix
          ~birth_sleep:item.wi_birth ~strict:true ~mode:M_default
          ~prune:cfg.prune ()
      in
      (match run.ro with
      | R_pruned -> incr pruned
      | _ ->
        incr schedules;
        deepest := max !deepest (Array.length run.points);
        (match run.ro with
        | R_pruned -> ()
        | R_ok s -> (
          match !reference with
          | None -> reference := Some s
          | Some r when r <> s ->
            record_failure run
              (Printf.sprintf "signature divergence: %s <> reference %s" s r)
          | Some _ -> ())
        | R_oracle m -> record_failure run ("oracle divergence: " ^ m)
        | R_deadlock m -> record_failure run ("deadlock: " ^ m)
        | R_mismatch m ->
          (* a strict prefix failed to replay: the per-thread op streams
             themselves depended on the schedule — nondeterminism *)
          record_failure run ("prefix replay mismatch: " ^ m)
        | R_error m -> record_failure run m);
        expand ~cfg ~prune:cfg.prune ~streams ~run
          ~prefix_len:(Array.length item.wi_prefix)
          ~push:(fun wi -> stack := wi :: !stack))
  done;
  {
    schedules = !schedules;
    pruned = !pruned;
    deepest = !deepest;
    truncated = !truncated;
    reference = !reference;
    failures = List.rev !failures;
  }

let hunt ?(config = default_config) wl =
  explore ~config:{ config with prune = false } wl

(* ---------- seeded random sampling ---------- *)

let sample ?(config = default_config) ?(jobs = 1) ~seed ~n wl =
  let cfg = config in
  let schedules = ref 0 in
  let deepest = ref 0 in
  let reference = ref None in
  let failures = ref [] in
  let record_failure run reason =
    if List.length !failures < max_recorded_failures then
      let f_trace =
        Trace.make ~workload:wl.Workload.name ~threads:cfg.threads
          ~scale:cfg.scale ~input_seed:cfg.input_seed
          ~runtime:(Options.name cfg.opts) ~choices:(choices_of run)
          ?expect:!reference ~note:reason ()
      in
      failures := { f_trace; f_reason = reason } :: !failures
  in
  (* With pruning off nothing ever reads the learned-footprint table, so
     each schedule gets its own: a sampled run is a pure function of its
     mode, which is what lets the walks execute on concurrent domains. *)
  let run_of mode =
    run_once ~cfg ~wl ~streams:(Hashtbl.create 64) ~prescribed:[||]
      ~birth_sleep:[] ~strict:true ~mode ~prune:false ()
  in
  let fold run =
    incr schedules;
    deepest := max !deepest (Array.length run.points);
    match run.ro with
    | R_ok s -> (
      match !reference with
      | None -> reference := Some s
      | Some r when r <> s ->
        record_failure run
          (Printf.sprintf "signature divergence: %s <> reference %s" s r)
      | Some _ -> ())
    | R_oracle m -> record_failure run ("oracle divergence: " ^ m)
    | R_deadlock m -> record_failure run ("deadlock: " ^ m)
    | R_mismatch m -> record_failure run ("replay mismatch: " ^ m)
    | R_error m -> record_failure run m
    | R_pruned -> ()
  in
  (* the default schedule provides the reference signature *)
  fold (run_of M_default);
  (* the n seeded walks are independent; run them across [jobs] domains
     and fold the outcomes in walk order, so the stats (and the order
     failures are recorded in) match the sequential sweep exactly *)
  Par.map_ordered ~jobs
    (fun i -> run_of (M_random (Det_rng.create (Int64.add seed (Int64.of_int i)))))
    (List.init n (fun i -> i + 1))
  |> List.iter fold;
  {
    schedules = !schedules;
    pruned = 0;
    deepest = !deepest;
    truncated = false;
    reference = !reference;
    failures = List.rev !failures;
  }

(* ---------- trace replay ---------- *)

type replay_result = {
  r_signature : string option;
  r_choices : int list;
  r_error : string option;
}

let options_of_name n =
  List.find_opt
    (fun o -> Options.name o = n)
    [ Options.ci; Options.pf; Options.baseline_no_opt ]

let detector_runtime = "race-detector"

(* Replay a trace whose runtime is the happens-before race detector: run
   the workload under [Race_detector.make] with the trace's choices
   prescribed, and report the race-set digest as the signature.  The
   detector's synchronization order is Kendo-stamped (icount-based), so
   the digest is schedule-invariant — which is exactly what lets the
   ddmin shrinker cut a recorded choice list down to (near) nothing and
   still reproduce the race set: the minimal repro for a race under DLRC
   is the workload itself. *)
let replay_detector ~strict (tr : Trace.t) =
  match Registry.find tr.Trace.workload with
  | exception Not_found ->
    {
      r_signature = None;
      r_choices = [];
      r_error = Some (Printf.sprintf "unknown workload %S" tr.Trace.workload);
    }
  | wl -> (
    let cfg =
      {
        default_config with
        threads = tr.Trace.threads;
        scale = tr.Trace.scale;
        input_seed = tr.Trace.input_seed;
        oracle = false;
      }
    in
    let report = ref None in
    let policy_override eng =
      let policy, rep = Rfdet_detect.Race_detector.make eng in
      report := Some rep;
      policy
    in
    let run =
      run_once ~policy_override ~cfg ~wl ~streams:(Hashtbl.create 16)
        ~prescribed:(Array.of_list tr.Trace.choices) ~birth_sleep:[] ~strict
        ~mode:M_default ~prune:false ()
    in
    let r_choices = choices_of run in
    match run.ro with
    | R_ok _ ->
      let digest =
        match !report with
        | Some rep -> Rfdet_detect.Race_detector.digest (rep ())
        | None -> assert false
      in
      let r_error =
        match tr.Trace.expect with
        | Some e when e <> digest ->
          Some (Printf.sprintf "race digest %s <> expected %s" digest e)
        | _ -> None
      in
      { r_signature = Some digest; r_choices; r_error }
    | R_oracle m ->
      { r_signature = None; r_choices; r_error = Some ("oracle divergence: " ^ m) }
    | R_deadlock m ->
      { r_signature = None; r_choices; r_error = Some ("deadlock: " ^ m) }
    | R_mismatch m ->
      { r_signature = None; r_choices; r_error = Some ("replay mismatch: " ^ m) }
    | R_error m -> { r_signature = None; r_choices; r_error = Some m }
    | R_pruned -> { r_signature = None; r_choices; r_error = Some "pruned" })

let replay ?(strict = true) ?(oracle = true) ?opts (tr : Trace.t) =
  if tr.Trace.runtime = detector_runtime then replay_detector ~strict tr
  else
  let wl =
    match Registry.find tr.Trace.workload with
    | wl -> Ok wl
    | exception Not_found ->
      Error (Printf.sprintf "unknown workload %S" tr.Trace.workload)
  in
  let opts =
    match opts with
    | Some o -> Ok o
    | None -> (
      match options_of_name tr.Trace.runtime with
      | Some o -> Ok o
      | None -> Error (Printf.sprintf "unknown runtime %S" tr.Trace.runtime))
  in
  match (wl, opts) with
  | Error e, _ | _, Error e ->
    { r_signature = None; r_choices = []; r_error = Some e }
  | Ok wl, Ok opts -> (
    let cfg =
      {
        default_config with
        opts;
        threads = tr.Trace.threads;
        scale = tr.Trace.scale;
        input_seed = tr.Trace.input_seed;
        oracle;
      }
    in
    let run =
      run_once ~cfg ~wl ~streams:(Hashtbl.create 16)
        ~prescribed:(Array.of_list tr.Trace.choices) ~birth_sleep:[] ~strict
        ~mode:M_default ~prune:false ()
    in
    let r_choices = choices_of run in
    match run.ro with
    | R_ok s ->
      let r_error =
        match tr.Trace.expect with
        | Some e when e <> s ->
          Some (Printf.sprintf "signature %s <> expected %s" s e)
        | _ -> None
      in
      { r_signature = Some s; r_choices; r_error }
    | R_oracle m ->
      { r_signature = None; r_choices; r_error = Some ("oracle divergence: " ^ m) }
    | R_deadlock m ->
      { r_signature = None; r_choices; r_error = Some ("deadlock: " ^ m) }
    | R_mismatch m ->
      { r_signature = None; r_choices; r_error = Some ("replay mismatch: " ^ m) }
    | R_error m -> { r_signature = None; r_choices; r_error = Some m }
    | R_pruned -> { r_signature = None; r_choices; r_error = Some "pruned" })
