(** Replayable schedule traces.

    A trace pins down one explored execution: the workload and its
    configuration, the runtime, and the tid chosen at every recorded
    synchronization-level choice point ([Engine.sched_point]s where the
    explorer had a real decision to make).  Everything else about the
    run is already deterministic, so this is a complete replay recipe —
    the format behind the [test/corpus/] regression files and the
    shrinker's minimized repros.

    File format (one [key value] pair per line, [#] comments ignored):
    {v
    # minimized by rfdet check --shrink
    workload micro-lock
    threads 2
    scale 1.0
    input-seed 42
    runtime rfdet-ci
    choices 1 0 1 1
    expect 9f86d081884c7d65
    note oracle divergence: ...
    v}
    [choices] is the space-separated tid sequence; [expect] (optional)
    is the output signature a healthy replay must reproduce; [note]
    (optional) is free-form provenance. *)

type t = {
  workload : string;
  threads : int;
  scale : float;
  input_seed : int64;
  runtime : string;  (** an [Options.name], e.g. "rfdet-ci" *)
  choices : int list;
  expect : string option;
  note : string option;
}

val make :
  workload:string ->
  threads:int ->
  scale:float ->
  input_seed:int64 ->
  runtime:string ->
  choices:int list ->
  ?expect:string ->
  ?note:string ->
  unit ->
  t

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse; [Error msg] on malformed input or missing required keys. *)

val save : t -> path:string -> unit

val load : path:string -> (t, string) result
