type t = {
  workload : string;
  threads : int;
  scale : float;
  input_seed : int64;
  runtime : string;
  choices : int list;
  expect : string option;
  note : string option;
}

let make ~workload ~threads ~scale ~input_seed ~runtime ~choices ?expect ?note
    () =
  { workload; threads; scale; input_seed; runtime; choices; expect; note }

let to_string t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "workload %s" t.workload;
  line "threads %d" t.threads;
  line "scale %g" t.scale;
  line "input-seed %Ld" t.input_seed;
  line "runtime %s" t.runtime;
  line "choices %s" (String.concat " " (List.map string_of_int t.choices));
  (match t.expect with None -> () | Some s -> line "expect %s" s);
  (match t.note with None -> () | Some s -> line "note %s" s);
  Buffer.contents b

let of_string text =
  let fields = Hashtbl.create 8 in
  let err = ref None in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.index_opt line ' ' with
           | None ->
             if !err = None then
               err := Some (Printf.sprintf "line %d: missing value" (lineno + 1))
           | Some i ->
             let key = String.sub line 0 i in
             let value =
               String.trim (String.sub line (i + 1) (String.length line - i - 1))
             in
             Hashtbl.replace fields key value);
  match !err with
  | Some e -> Error e
  | None -> (
    let get k = Hashtbl.find_opt fields k in
    let req k =
      match get k with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing required key %S" k)
    in
    let ( let* ) = Result.bind in
    let parse name conv v =
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad %s value %S" name v)
    in
    let* workload = req "workload" in
    let* threads =
      let* v = req "threads" in
      parse "threads" int_of_string_opt v
    in
    let* scale =
      let* v = req "scale" in
      parse "scale" float_of_string_opt v
    in
    let* input_seed =
      let* v = req "input-seed" in
      parse "input-seed" Int64.of_string_opt v
    in
    let* runtime = req "runtime" in
    let* choices =
      let* v = req "choices" in
      let parts =
        String.split_on_char ' ' v |> List.filter (fun s -> s <> "")
      in
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* n = parse "choice" int_of_string_opt s in
          Ok (n :: acc))
        (Ok []) parts
      |> Result.map List.rev
    in
    Ok
      {
        workload;
        threads;
        scale;
        input_seed;
        runtime;
        choices;
        expect = get "expect";
        note = get "note";
      })

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
