module Engine = Rfdet_sim.Engine
module Options = Rfdet_core.Options
module Workload = Rfdet_workloads.Workload
module Fault_plan = Rfdet_fault.Fault_plan
module Recover = Rfdet_recover.Recover

type outcome = Completed | Aborted of string

type cell = {
  runtime : string;
  mode : Engine.failure_mode;
  index : int;
  outcome : outcome;
  deterministic : bool;
  restarts : int;
  conformant : bool option;
}

type summary = {
  workload : string;
  cells : cell list;
  sites : int;
  hangs : int;  (** always 0 on return — a hang raises [Engine.Runaway] *)
  nondeterministic : int;
  aborted : int;
  nonconformant : int;
}

let mode_name = function
  | Engine.Abort -> "abort"
  | Engine.Contain -> "contain"
  | Engine.Recover -> "recover"

(* One RFDet run under the DLRC conformance oracle, with the recovery
   manager attached when the mode asks for it.  Mid-run divergence under
   Contain/Recover is itself contained as a thread crash, so conformance
   is judged by (1) no crash record mentioning Divergence and (2) a
   final-state [Oracle.check] pass. *)
let run_rfdet_conformant ~opts ~mode ~plan ~threads ~scale workload =
  let cfg = { Workload.threads; scale; input_seed = 42L } in
  let config =
    {
      Engine.default_config with
      seed = 1L;
      jitter_mean = 0.;
      failure_mode = mode;
      inject = Some (Fault_plan.injector plan);
    }
  in
  let main = workload.Workload.main cfg in
  let state_ref = ref None in
  let maker engine =
    let state, policy = Oracle.wrap_with_state ~opts engine in
    state_ref := Some state;
    match mode with
    | Engine.Recover ->
      let mgr =
        Recover.create engine
          {
            Recover.rh_sync = Some (Rfdet_core.Rfdet_runtime.sync state);
            prepare_restart =
              (fun ~tid ->
                Rfdet_core.Rfdet_runtime.crash_recoverable state ~tid);
          }
      in
      Recover.register mgr ~tid:0 main;
      Recover.attach mgr policy
    | Engine.Abort | Engine.Contain -> policy
  in
  let r = Engine.run ~config maker ~main in
  let diverged_inline =
    List.exists
      (fun (_, msg) ->
        (* substring search: crash records carry Printexc text *)
        let needle = "Divergence" in
        let n = String.length needle and m = String.length msg in
        let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
        at 0)
      r.Engine.crashes
  in
  let final_ok =
    match !state_ref with
    | None -> true
    | Some st -> (
      match Oracle.check st with
      | () -> true
      | exception Oracle.Divergence _ -> false)
  in
  (Engine.output_signature r, r.Engine.profile.restarts,
   (not diverged_inline) && final_ok)

let run_once ~mode ~plan ~threads ~scale runtime workload =
  match runtime with
  | Rfdet_harness.Runner.Rfdet opts when mode <> Engine.Abort ->
    run_rfdet_conformant ~opts ~mode ~plan ~threads ~scale workload
  | _ ->
    let r =
      Rfdet_harness.Runner.run ~threads ~scale ~sched_seed:1L ~jitter:0. ~faults:plan
        ~failure_mode:mode runtime workload
    in
    (r.Rfdet_harness.Runner.signature, r.Rfdet_harness.Runner.profile.restarts, true)

(* Inject one crash at global operation index [k] (deterministic at
   jitter 0), run the same configuration twice, and compare.  [op_class]
   narrows the counter to one operation class — e.g. [Cond_op] probes
   the k-th condvar operation, landing crashes inside wait/signal
   protocols that a global index rarely hits. *)
let probe ?(op_class = Fault_plan.Any_op) ~mode ~threads ~scale runtime
    workload ~index =
  let plan =
    [ { Fault_plan.tid = None; op = op_class; nth = index;
        action = Fault_plan.Crash } ]
  in
  let attempt () = run_once ~mode ~plan ~threads ~scale runtime workload in
  let is_rfdet = match runtime with Rfdet_harness.Runner.Rfdet _ -> true | _ -> false in
  match attempt () with
  | sig1, restarts, ok1 ->
    let deterministic, ok2 =
      match attempt () with
      | sig2, _, ok2 -> (String.equal sig1 sig2, ok2)
      | exception _ -> (false, true)
    in
    {
      runtime = Rfdet_harness.Runner.runtime_name runtime;
      mode;
      index;
      outcome = Completed;
      deterministic;
      restarts;
      conformant = (if is_rfdet then Some (ok1 && ok2) else None);
    }
  | exception e ->
    let text = Printexc.to_string e in
    let deterministic =
      match attempt () with
      | _ -> false
      | exception e2 -> String.equal text (Printexc.to_string e2)
    in
    {
      runtime = Rfdet_harness.Runner.runtime_name runtime;
      mode;
      index;
      outcome = Aborted text;
      deterministic;
      restarts = 0;
      conformant = None;
    }

let default_runtimes =
  [ Rfdet_harness.Runner.Pthreads; Rfdet_harness.Runner.Kendo; Rfdet_harness.Runner.Dthreads; Rfdet_harness.Runner.Coredet;
    Rfdet_harness.Runner.rfdet_ci ]

let sweep ?(op_class = Fault_plan.Any_op) ?(threads = 3) ?(scale = 1.0)
    ?(modes = [ Engine.Contain; Engine.Recover ])
    ?(runtimes = default_runtimes) ?(max_sites = 500) ?(jobs = 1) workload =
  (* bound the sweep by the clean run's operation count; a class-targeted
     sweep has fewer eligible sites than global ops, so indices past the
     class count simply probe the clean run (still checked for
     determinism) — cap them with [max_sites] *)
  let clean =
    Rfdet_harness.Runner.run ~threads ~scale ~sched_seed:1L ~jitter:0. Rfdet_harness.Runner.Pthreads
      workload
  in
  let sites = min clean.Rfdet_harness.Runner.ops max_sites in
  (* Flatten the runtime x mode x site grid in its nesting order; every
     probe is a pure function of its coordinates (both attempts build
     fresh engines), so the cells can be probed on concurrent domains
     and collected back in grid order. *)
  let grid =
    List.concat_map
      (fun runtime ->
        List.concat_map
          (fun mode ->
            List.init sites (fun i -> (runtime, mode, i + 1)))
          modes)
      runtimes
  in
  let cells =
    Rfdet_par.Par.map_ordered ~jobs
      (fun (runtime, mode, index) ->
        probe ~op_class ~mode ~threads ~scale runtime workload ~index)
      grid
  in
  let count f = List.length (List.filter f cells) in
  {
    workload = workload.Workload.name;
    cells;
    sites;
    hangs = 0;
    nondeterministic = count (fun c -> not c.deterministic);
    aborted = count (fun c -> match c.outcome with Aborted _ -> true | _ -> false);
    nonconformant = count (fun c -> c.conformant = Some false);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "clinic %s: %d sites x %d cells; aborted=%d nondeterministic=%d \
     nonconformant=%d"
    s.workload s.sites (List.length s.cells) s.aborted s.nondeterministic
    s.nonconformant;
  List.iter
    (fun c ->
      if (not c.deterministic) || c.conformant = Some false then
        Format.fprintf ppf "@.  FAIL %s/%s k=%d det=%b conformant=%s" c.runtime
          (mode_name c.mode) c.index c.deterministic
          (match c.conformant with
          | None -> "n/a"
          | Some b -> string_of_bool b))
    s.cells
