(** The DLRC conformance oracle.

    The paper's correctness argument (Section 3, Figure 5) fixes, for
    every thread at every synchronization point, exactly which slices
    {e must} and {e must-not} have been propagated to it:

    - {b must-not}: a slice may be in a thread's slice-pointer list only
      if its vector timestamp is strictly before the thread's current
      vector time — propagating anything else would leak writes that do
      not happen-before the thread's position (the upper-limit filter);
    - {b must}: every live slice whose timestamp {e is} strictly before
      the thread's vector time has to be in its list — the acquire-time
      scans with the lower-limit filter and the resume indices must
      never lose a happens-before slice (completeness / visibility);
    - {b never twice}: no slice appears twice in any list — the
      lower-limit filter is exactly a redundancy eliminator (the same
      property [Dlrc_model.make_checked] asserts on the naive model).

    This module recomputes those three conditions from nothing but the
    vector-time rules — independently of how [Propagate]'s incremental
    scan, resume indices, slice merging, GC and lazy writes conspire to
    implement them — after every synchronization step, and raises
    [Divergence] the moment the optimized runtime's actual state
    disagrees.  Every schedule the explorer enumerates runs under this
    oracle. *)

exception Divergence of string

val check : Rfdet_core.Rfdet_runtime.t -> unit
(** Run all three checks over every thread state now.  Raises
    [Divergence] with a diagnostic on the first violation. *)

val wrap_with_state :
  ?opts:Rfdet_core.Options.t ->
  Rfdet_sim.Engine.t ->
  Rfdet_core.Rfdet_runtime.t * Rfdet_sim.Engine.policy
(** An RFDet policy instrumented with the oracle: [check] runs after
    every engine step that involved a synchronization operation or a
    thread exit, and once more at the end of the run.  Note that a
    [Divergence] raised mid-run surfaces as
    [Engine.Thread_failure (_, Divergence _)] under the default
    [Abort] failure mode. *)

val wrap :
  ?opts:Rfdet_core.Options.t -> Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy
(** [snd (wrap_with_state ...)] — use as
    [Engine.run ~config (Oracle.wrap ~opts) ~main]. *)
