(** Delta-debugging schedule shrinker.

    A failing exploration trace can carry dozens of choices, most of
    them irrelevant to the failure.  [shrink] minimizes the choice
    sequence with the classic ddmin algorithm: repeatedly drop chunks of
    choices and keep any reduction that still fails.  Replay is
    tolerant ([Explore.replay ~strict:false]) — at a choice point whose
    prescribed tid is not ready the deterministic default is used
    instead — so a shortened prescription remains executable even when
    dropped choices shift the ones that remain. *)

type result = {
  minimized : Trace.t;
      (** the input trace with a 1-minimal choice sequence and a [note]
          recording the failure it still reproduces *)
  reason : string;  (** the minimized trace's failure *)
  tries : int;  (** replays spent minimizing *)
}

val default_fails : Explore.replay_result -> bool
(** Any failed replay: [r_error] is set. *)

val shrink :
  ?oracle:bool ->
  ?opts:Rfdet_core.Options.t ->
  ?fails:(Explore.replay_result -> bool) ->
  Trace.t ->
  result option
(** [None] when the input trace does not fail [fails] in the first
    place.  The result's choice sequence is 1-minimal: removing any
    single remaining choice makes the failure disappear.  [oracle]
    (default [true]) runs the conformance oracle during replays; [opts]
    overrides the replay options (see [Explore.replay]) — required when
    the failure needs [Options.bug_drop_window]. *)
