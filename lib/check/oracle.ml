module Engine = Rfdet_sim.Engine
module Op = Rfdet_sim.Op
module Vec = Rfdet_util.Vec
module Vclock = Rfdet_util.Vclock
module Rt = Rfdet_core.Rfdet_runtime
module Tstate = Rfdet_core.Tstate
module Slice = Rfdet_core.Slice
module Metadata = Rfdet_core.Metadata

exception Divergence of string

let fail fmt = Printf.ksprintf (fun s -> raise (Divergence s)) fmt

(* Vector times are max_threads wide; print only the prefix up to the
   last nonzero component. *)
let pp_time time =
  let l = Vclock.to_list time in
  let rec trim = function
    | [] -> []
    | x :: rest -> (
      match trim rest with [] when x = 0 -> [] | t -> x :: t)
  in
  "[" ^ String.concat "," (List.map string_of_int (trim l)) ^ "]"

(* Per-thread checks: never-twice and must-not.  Returns the set of
   slice ids in the thread's list for the completeness pass. *)
let check_state ~tid (ts : Tstate.t) =
  let ids = Hashtbl.create 64 in
  Vec.iter ts.Tstate.slices ~f:(fun (s : Slice.t) ->
      if Hashtbl.mem ids s.Slice.id then
        fail
          "oracle: slice %d (tid %d, time %s) appears twice in tid %d's \
           slice-pointer list"
          s.Slice.id s.Slice.tid (pp_time s.Slice.time) tid;
      Hashtbl.replace ids s.Slice.id ();
      if not (Vclock.lt s.Slice.time ts.Tstate.time) then
        fail
          "oracle: must-not violated — slice %d (tid %d, time %s) is in tid \
           %d's list but does not happen-before its time %s"
          s.Slice.id s.Slice.tid (pp_time s.Slice.time) tid
          (pp_time ts.Tstate.time));
  ids

let check rt =
  let states = ref [] in
  Rt.iter_states rt ~f:(fun ~tid ts ->
      states := (tid, ts, check_state ~tid ts) :: !states);
  (* Completeness: every live slice ordered strictly before a thread's
     vector time must already be in that thread's list — whatever path
     (locks, barriers, joins, resume indices) should have carried it. *)
  Metadata.iter_slices (Rt.metadata rt) ~f:(fun (s : Slice.t) ->
      if not s.Slice.freed then
        List.iter
          (fun (tid, (ts : Tstate.t), ids) ->
            if
              Vclock.lt s.Slice.time ts.Tstate.time
              && not (Hashtbl.mem ids s.Slice.id)
            then
              fail
                "oracle: must violated — slice %d (tid %d, time %s) \
                 happens-before tid %d (time %s) but was never propagated \
                 to it"
                s.Slice.id s.Slice.tid (pp_time s.Slice.time) tid
                (pp_time ts.Tstate.time))
          !states)

let wrap_with_state ?opts engine =
  let rt, policy = Rt.make_with_state ?opts engine in
  (* Propagation happens inside arbiter grants, which fire in [on_step]
     polls — so check after any step that involved a sync op or an exit,
     once the grants have settled. *)
  let pending = ref false in
  let handle ~tid op =
    if Op.is_sync op then pending := true;
    policy.Engine.handle ~tid op
  in
  let on_thread_exit ~tid =
    pending := true;
    policy.Engine.on_thread_exit ~tid
  in
  let on_step () =
    policy.Engine.on_step ();
    if !pending then begin
      pending := false;
      check rt
    end
  in
  let on_finish () =
    check rt;
    policy.Engine.on_finish ()
  in
  (rt, { policy with Engine.handle; on_thread_exit; on_step; on_finish })

let wrap ?opts engine = snd (wrap_with_state ?opts engine)
