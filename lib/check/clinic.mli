(** The crash clinic: exhaustive single-crash sweeps.

    For every operation index [k] of a workload's (jitter-free) run, the
    clinic injects one crash at the [k]-th operation and checks the
    robustness contract at that point, under both crash containment and
    deterministic recovery, across runtimes:

    - {b no hang}: every probed run terminates (a scheduler stall raises
      [Engine.Deadlock]; a runaway raises [Engine.Runaway]; both count
      as aborts, never as hangs);
    - {b determinism}: the same seed and the same injection give the
      same output signature twice in a row — or abort with the same
      exception twice in a row;
    - {b conformance} (RFDet only): the DLRC oracle ([Rfdet_check])
      holds mid-run and on the final state, i.e. crash containment and
      restart never corrupt the propagation invariants.

    Runtimes without a per-thread recovery path (pthreads joins on a
    dead thread; dthreads/coredet fences would stall) abort gracefully
    — the clinic asserts that this abort is itself deterministic. *)

type outcome = Completed | Aborted of string

type cell = {
  runtime : string;
  mode : Rfdet_sim.Engine.failure_mode;
  index : int;  (** 1-based global operation index of the injection *)
  outcome : outcome;
  deterministic : bool;  (** two same-seed runs agreed *)
  restarts : int;  (** threads restarted (Recover mode) *)
  conformant : bool option;  (** RFDet: DLRC-oracle verdict; else [None] *)
}

type summary = {
  workload : string;
  cells : cell list;
  sites : int;  (** operation indices probed (1..sites) *)
  hangs : int;  (** always 0 on return — a hang raises instead *)
  nondeterministic : int;
  aborted : int;
  nonconformant : int;
}

val mode_name : Rfdet_sim.Engine.failure_mode -> string

val sweep :
  ?op_class:Rfdet_fault.Fault_plan.op_class ->
  ?threads:int ->
  ?scale:float ->
  ?modes:Rfdet_sim.Engine.failure_mode list ->
  ?runtimes:Rfdet_harness.Runner.runtime list ->
  ?max_sites:int ->
  ?jobs:int ->
  Rfdet_workloads.Workload.t ->
  summary
(** Defaults: 3 threads, scale 1.0, modes [Contain; Recover], all five
    runtimes, at most 500 injection sites, [jobs = 1].  A healthy
    runtime yields [nondeterministic = 0] and [nonconformant = 0];
    [aborted] is expected to be nonzero for the fence runtimes.  [jobs]
    probes the runtime x mode x site grid on that many host domains;
    each probe is self-contained and cells return in grid order, so the
    summary is byte-identical for every [jobs] value.

    [op_class] (default [Any_op]) retargets the injection counter to one
    operation class — [Cond_op] crashes the k-th condvar operation,
    [Sem_op] the k-th semaphore operation, and so on — steering probes
    into the wait/signal and acquire protocols that a global operation
    index almost never lands inside.  Indices past the class's
    population probe the clean run, so cap them with [max_sites]. *)

val pp_summary : Format.formatter -> summary -> unit
