module Registry = Rfdet_workloads.Registry
module Workload = Rfdet_workloads.Workload

type summary = {
  explored : (string * Explore.stats) list;
  sampled : (string * Explore.stats) list;
  differential : Differential.report list;
  corpus : (string * string option) list;
  ok : bool;
}

let stats_clean (s : Explore.stats) = s.Explore.failures = []

let replay_corpus dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let err =
             match Trace.load ~path with
             | Error e -> Some ("parse: " ^ e)
             | Ok tr -> (Explore.replay ~strict:false tr).Explore.r_error
           in
           (f, err))

let conformance ?(exhaustive = true) ?(samples = 200) ?(sample_seed = 2026L)
    ?corpus_dir ?(progress = fun _ -> ()) ?(jobs = 1) () =
  let explored =
    if not exhaustive then []
    else
      List.map
        (fun (wl : Workload.t) ->
          let s = Explore.explore wl in
          progress
            (Printf.sprintf
               "exhaustive %-14s %d schedules (%d pruned, %d choice points%s, \
                %d failures)"
               wl.Workload.name s.Explore.schedules s.Explore.pruned
               s.Explore.deepest
               (if s.Explore.truncated then ", TRUNCATED" else "")
               (List.length s.Explore.failures));
          (wl.Workload.name, s))
        Registry.micro
  in
  let sampled =
    if samples <= 0 then []
    else
      let sample_one ~threads (wl : Workload.t) =
      let config = { Explore.default_config with threads } in
      let s = Explore.sample ~config ~jobs ~seed:sample_seed ~n:samples wl in
      progress
        (Printf.sprintf "sampled   %-14s %d schedules at %d threads (%d failures)"
           wl.Workload.name s.Explore.schedules threads
           (List.length s.Explore.failures));
      (wl.Workload.name, s)
    in
    List.map (sample_one ~threads:3) Registry.micro
    @ [ sample_one ~threads:2 (Registry.find "racey") ]
  in
  let differential =
    let reports =
      Differential.race_free_suite ~jobs () @ Differential.racy_suite ~jobs ()
    in
    List.iter
      (fun r ->
        progress (Format.asprintf "differential %a" Differential.pp_report r))
      reports;
    reports
  in
  let corpus =
    match corpus_dir with
    | None -> []
    | Some dir ->
      let results = replay_corpus dir in
      List.iter
        (fun (f, err) ->
          progress
            (Printf.sprintf "corpus    %-24s %s" f
               (match err with None -> "ok" | Some e -> "FAIL: " ^ e)))
        results;
      results
  in
  let ok =
    List.for_all (fun (_, s) -> stats_clean s) explored
    && List.for_all (fun (_, s) -> stats_clean s) sampled
    && List.for_all (fun (r : Differential.report) -> r.Differential.ok)
         differential
    && List.for_all (fun (_, err) -> err = None) corpus
  in
  { explored; sampled; differential; corpus; ok }

let pp_summary ppf s =
  let failures stats =
    List.length
      (List.concat_map (fun (_, st) -> st.Explore.failures) stats)
  in
  Format.fprintf ppf "conformance: %s@." (if s.ok then "ok" else "FAIL");
  List.iter
    (fun (name, (st : Explore.stats)) ->
      Format.fprintf ppf "  exhaustive %-14s %6d schedules %5d pruned %s@." name
        st.Explore.schedules st.Explore.pruned
        (if st.Explore.failures = [] then "ok" else "FAIL"))
    s.explored;
  List.iter
    (fun (name, (st : Explore.stats)) ->
      Format.fprintf ppf "  sampled    %-14s %6d schedules %s@." name
        st.Explore.schedules
        (if st.Explore.failures = [] then "ok" else "FAIL"))
    s.sampled;
  List.iter
    (fun r -> Format.fprintf ppf "  %a@." Differential.pp_report r)
    s.differential;
  List.iter
    (fun (f, err) ->
      Format.fprintf ppf "  corpus %-24s %s@." f
        (match err with None -> "ok" | Some e -> "FAIL: " ^ e))
    s.corpus;
  if failures s.explored + failures s.sampled > 0 then
    Format.fprintf ppf "  exploration failures: %d (see traces)@."
      (failures s.explored + failures s.sampled)
