type result = { minimized : Trace.t; reason : string; tries : int }

let default_fails (r : Explore.replay_result) = r.Explore.r_error <> None

(* Split [lst] into [n] contiguous chunks of near-equal length. *)
let partition lst n =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec take k lst =
    if k = 0 then ([], lst)
    else
      match lst with
      | [] -> ([], [])
      | x :: rest ->
        let taken, left = take (k - 1) rest in
        (x :: taken, left)
  in
  let rec go i lst =
    if i >= n || lst = [] then []
    else
      let k = base + if i < extra then 1 else 0 in
      let chunk, rest = take k lst in
      chunk :: go (i + 1) rest
  in
  go 0 lst

let shrink ?(oracle = true) ?opts ?(fails = default_fails) (tr : Trace.t) =
  let tries = ref 0 in
  let reason = ref "" in
  let test choices =
    incr tries;
    let r = Explore.replay ~strict:false ~oracle ?opts { tr with Trace.choices } in
    let failing = fails r in
    if failing then
      reason := Option.value r.Explore.r_error ~default:"predicate failure";
    failing
  in
  if not (test tr.Trace.choices) then None
  else begin
    let rec ddmin lst n =
      let len = List.length lst in
      if len <= 1 then lst
      else
        let chunks = partition lst n in
        let rec try_drop i =
          if i >= List.length chunks then None
          else
            let complement =
              List.concat (List.filteri (fun k _ -> k <> i) chunks)
            in
            if test complement then Some complement else try_drop (i + 1)
        in
        match try_drop 0 with
        | Some smaller -> ddmin smaller (max (n - 1) 2)
        | None -> if n < len then ddmin lst (min (2 * n) len) else lst
    in
    let choices = ddmin tr.Trace.choices 2 in
    ignore (test choices);
    let minimized =
      { tr with Trace.choices; note = Some ("minimized: " ^ !reason) }
    in
    Some { minimized; reason = !reason; tries = !tries }
  end
