(** Systematic schedule exploration (stateless model checking) for the
    RFDet runtime.

    The engine's [config.choose] hook hands every scheduling step to a
    chooser; this module drives it through a bounded depth-first search
    over {e synchronization-level} choices.  Between synchronization
    boundaries a thread only touches private memory (that is DLRC's
    slice-privacy argument), so the explorer preempts nowhere else: a
    choice point arises exactly when the running thread stops at a
    boundary (sync op, handle creation), blocks, or exits while others
    are ready.  Each explored schedule runs to completion under the
    DLRC conformance oracle ([Oracle]), and its output signature is
    compared against the first schedule's — the paper's determinism
    theorem says {e every} interleaving must agree.

    Exhaustive mode enumerates every interleaving, with optional
    sleep-set pruning (Godefroid): after a branch is explored, the
    chosen thread is put to sleep in sibling branches until a dependent
    segment wakes it (two segments are dependent unless their closing
    boundary ops are on provably different objects — same-object
    lock/atomic footprints, everything else conservatively [Top]).
    Pruned runs are counted separately; pruning assumes schedules
    commute object-wise, which a {e buggy} runtime may violate — turn it
    off when hunting bugs, as [hunt] does.

    Sampled mode ([sample]) replaces DFS with [n] seeded uniform random
    walks over the same choice points — the fallback for workloads too
    big to enumerate; same oracle, same signature cross-check. *)

type config = {
  opts : Rfdet_core.Options.t;  (** runtime configuration (default ci) *)
  threads : int;  (** workload threads (default 2) *)
  scale : float;
  input_seed : int64;
  oracle : bool;  (** run the conformance oracle (default true) *)
  prune : bool;  (** sleep-set pruning (default true) *)
  max_depth : int;  (** no branching beyond this many choice points *)
  max_preemptions : int;
      (** CHESS-style bound: branches that preempt a still-ready thread
          at a boundary more than this many times are not explored
          ([max_int] = unbounded, the default) *)
  max_schedules : int;  (** hard cap on executed schedules *)
}

val default_config : config

type failure = {
  f_trace : Trace.t;
      (** replay recipe — the recorded choices up to the failure point
          (a failing run stops recording when it dies, so the trace is
          self-truncating) *)
  f_reason : string;
}

type stats = {
  schedules : int;  (** schedules executed to completion *)
  pruned : int;  (** runs cut short by sleep-set pruning *)
  deepest : int;  (** most choice points seen in one schedule *)
  truncated : bool;  (** hit [max_schedules] before exhausting *)
  reference : string option;  (** signature of the first schedule *)
  failures : failure list;
}

val explore : ?config:config -> Rfdet_workloads.Workload.t -> stats
(** Bounded-exhaustive DFS.  With the default bounds and a micro
    workload this enumerates every synchronization interleaving. *)

val sample :
  ?config:config ->
  ?jobs:int ->
  seed:int64 ->
  n:int ->
  Rfdet_workloads.Workload.t ->
  stats
(** [n] seeded random schedules (plus the default schedule, which
    provides [reference] and always runs first).  Deterministic for a
    given [seed], {e including} across [jobs]: the walks execute on up
    to [jobs] host domains (default 1) with run-local state, and their
    outcomes fold in walk order, so the stats are identical for every
    job count. *)

val hunt : ?config:config -> Rfdet_workloads.Workload.t -> stats
(** [explore] with pruning off — complete even against bugs that break
    object-wise commutativity (like [Options.bug_drop_window]). *)

type replay_result = {
  r_signature : string option;  (** [None] when the run died *)
  r_choices : int list;  (** full recorded choice sequence of the run *)
  r_error : string option;  (** oracle divergence, deadlock, mismatch … *)
}

val detector_runtime : string
(** The reserved trace-runtime name ["race-detector"]: a trace carrying
    it replays the workload under [Rfdet_detect.Race_detector] instead
    of an RFDet configuration, and its signature (and [expect] field) is
    the race-set digest ([Race_detector.digest]) rather than an output
    signature.  This is the vehicle for auto-minimized race repros in
    [test/corpus/]: the corpus replayer, the ddmin shrinker and
    [rfdet check --replay] all handle such traces through this single
    dispatch point. *)

val replay :
  ?strict:bool ->
  ?oracle:bool ->
  ?opts:Rfdet_core.Options.t ->
  Trace.t ->
  replay_result
(** Re-run a trace: recorded choices are prescribed positionally; after
    they run out (or, when [strict] is [false], whenever a prescribed
    tid is not ready) the deterministic default choice is used.  With
    [strict] (default [true]) an unavailable prescribed tid is an
    error.  [oracle] defaults to [true].  [opts] overrides the options
    the trace's [runtime] name resolves to — the only way to replay
    under [Options.bug_drop_window], which the name does not encode.
    If the trace carries an [expect] signature, a clean run with a
    different signature is reported in [r_error].  A trace whose runtime
    is [detector_runtime] replays under the race detector instead;
    [oracle] and [opts] are then ignored and the signature is the race
    digest. *)
