(** Differential conformance across runtimes.

    Every strongly deterministic runtime must be seed-stable, and on
    race-free workloads they must all compute the same thing: the
    outputs are fixed by program semantics, so rfdet-ci, rfdet-pf,
    CoreDet and DThreads have to produce {e equal} signatures — any
    disagreement means one of them changed program behavior.  On racy
    workloads (racey) the runtimes may legitimately disagree with each
    other (they pick different deterministic winners) but each must
    still be stable across scheduler seeds.

    Independently, the naive executable DLRC model ([Dlrc_model]) must
    match rfdet-ci {e even on racy programs} — both implement the same
    deterministic semantics, so this comparison indicts individual
    optimizations (resume indices, merging, GC, lazy writes) rather
    than whole designs. *)

type report = {
  workload : string;
  threads : int;
  signatures : (string * string) list;
      (** runtime name -> signature under the first scheduler seed *)
  unstable : string list;
      (** runtimes whose signature varied across scheduler seeds *)
  disagree : (string * string * string * string) option;
      (** two runtimes with different signatures:
          (name_a, sig_a, name_b, sig_b) *)
  expect_agree : bool;  (** whether [disagree] counts as a failure *)
  model_diverged : bool;  (** dlrc-model signature differs from rfdet-ci *)
  ok : bool;
}

val runtimes : Rfdet_harness.Runner.runtime list
(** rfdet-ci, rfdet-pf, CoreDet, DThreads. *)

val check :
  ?threads:int ->
  ?scale:float ->
  ?input_seed:int64 ->
  ?seeds:int64 list ->
  ?jitter:float ->
  ?expect_agree:bool ->
  ?model:bool ->
  ?jobs:int ->
  Rfdet_workloads.Workload.t ->
  report
(** Defaults: 2 threads, scale 1.0, input seed 42, three scheduler
    seeds, jitter 9.0 (so seeds really perturb the interleaving),
    [expect_agree = true], [model = true], [jobs = 1].  [jobs] runs the
    runtime x scheduler-seed matrix on that many host domains; cells
    regroup in matrix order, so the report is byte-identical for every
    [jobs] value. *)

val race_free_suite : ?threads:int -> ?jobs:int -> unit -> report list
(** The micro workloads, signature-equality required. *)

val racy_suite : ?threads:int -> ?jobs:int -> unit -> report list
(** racey: per-runtime stability and model agreement only. *)

val pp_report : Format.formatter -> report -> unit
