module Engine = Rfdet_sim.Engine
module Options = Rfdet_core.Options
module Workload = Rfdet_workloads.Workload

type runtime = Pthreads | Kendo | Dthreads | Coredet | Rfdet of Options.t

let runtime_name = function
  | Pthreads -> Rfdet_baselines.Pthreads_runtime.name
  | Kendo -> Rfdet_baselines.Kendo_runtime.name
  | Dthreads -> Rfdet_baselines.Dthreads_runtime.name
  | Coredet -> Rfdet_baselines.Coredet_runtime.name
  | Rfdet opts -> Options.name opts

let rfdet_ci = Rfdet Options.ci

let rfdet_pf = Rfdet Options.pf

let all_runtimes = [ Pthreads; Kendo; Dthreads; rfdet_ci; rfdet_pf ]

let make_policy = function
  | Pthreads -> Rfdet_baselines.Pthreads_runtime.make
  | Kendo -> Rfdet_baselines.Kendo_runtime.make
  | Dthreads -> Rfdet_baselines.Dthreads_runtime.make
  | Coredet -> Rfdet_baselines.Coredet_runtime.make ?quantum:None
  | Rfdet opts -> Rfdet_core.Rfdet_runtime.make ~opts

type run_result = {
  runtime : string;
  workload : string;
  sim_time : int;
  wall_seconds : float;
  signature : string;
  outputs : (int * int64) list;
  profile : Rfdet_sim.Profile.t;
  threads : int;
  ops : int;
  trace : Rfdet_sim.Engine.trace_entry list;
  crashes : (int * string) list;
  thread_clocks : (int * int) list;
}

let run ?(threads = 4) ?(scale = 1.0) ?(input_seed = 42L) ?(sched_seed = 1L)
    ?(jitter = 0.) ?(cost = Rfdet_sim.Cost.default) ?(trace = 0) ?faults
    ?(failure_mode = Engine.Contain) ?(obs = Rfdet_obs.Sink.null) runtime
    workload =
  let cfg = { Workload.threads; scale; input_seed } in
  let config =
    {
      Engine.default_config with
      cost;
      seed = sched_seed;
      jitter_mean = jitter;
      trace_capacity = trace;
      failure_mode =
        (match faults with None -> Engine.default_config.failure_mode
        | Some _ -> failure_mode);
      (* a fresh injector per run: occurrence counters are mutable *)
      inject = Option.map Rfdet_fault.Fault_plan.injector faults;
      obs;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Engine.run ~config (make_policy runtime) ~main:(workload.Workload.main cfg)
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    runtime = runtime_name runtime;
    workload = workload.Workload.name;
    sim_time = r.Engine.sim_time;
    wall_seconds;
    signature = Engine.output_signature r;
    outputs = r.Engine.outputs;
    profile = r.Engine.profile;
    threads = r.Engine.threads;
    ops = r.Engine.ops;
    trace = r.Engine.trace;
    crashes = r.Engine.crashes;
    thread_clocks = r.Engine.thread_clocks;
  }
