module Engine = Rfdet_sim.Engine
module Options = Rfdet_core.Options
module Workload = Rfdet_workloads.Workload
module Recover = Rfdet_recover.Recover

type runtime = Pthreads | Kendo | Dthreads | Coredet | Rfdet of Options.t

let runtime_name = function
  | Pthreads -> Rfdet_baselines.Pthreads_runtime.name
  | Kendo -> Rfdet_baselines.Kendo_runtime.name
  | Dthreads -> Rfdet_baselines.Dthreads_runtime.name
  | Coredet -> Rfdet_baselines.Coredet_runtime.name
  | Rfdet opts -> Options.name opts

let rfdet_ci = Rfdet Options.ci

let rfdet_pf = Rfdet Options.pf

let all_runtimes = [ Pthreads; Kendo; Dthreads; rfdet_ci; rfdet_pf ]

(* The CLI-facing runtime vocabulary — the single source of truth for
   `--runtime` parsing and for the [runtime] field of record/replay
   journal headers, so a recorded name always resolves back to the same
   runtime.  Note the short alias "rfdet-noopt": [Options.name] spells
   that configuration "rfdet-ci-noopt". *)
let named_runtimes =
  [
    ("pthreads", Pthreads);
    ("kendo", Kendo);
    ("dthreads", Dthreads);
    ("coredet", Coredet);
    ("rfdet-ci", rfdet_ci);
    ("rfdet-pf", rfdet_pf);
    ("rfdet-noopt", Rfdet Options.baseline_no_opt);
  ]

let runtime_of_name n = List.assoc_opt n named_runtimes

let cli_name r =
  match List.find_opt (fun (_, r') -> r' = r) named_runtimes with
  | Some (n, _) -> n
  | None -> runtime_name r

let make_policy = function
  | Pthreads -> Rfdet_baselines.Pthreads_runtime.make
  | Kendo -> Rfdet_baselines.Kendo_runtime.make
  | Dthreads -> Rfdet_baselines.Dthreads_runtime.make
  | Coredet -> Rfdet_baselines.Coredet_runtime.make ?quantum:None
  | Rfdet opts -> Rfdet_core.Rfdet_runtime.make ~opts

type run_result = {
  runtime : string;
  workload : string;
  sim_time : int;
  wall_seconds : float;
  signature : string;
  output_checksum : string;
  outputs : (int * int64) list;
  profile : Rfdet_sim.Profile.t;
  threads : int;
  ops : int;
  trace : Rfdet_sim.Engine.trace_entry list;
  crashes : (int * string) list;
  thread_clocks : (int * int) list;
}

let run ?(threads = 4) ?(scale = 1.0) ?(input_seed = 42L) ?(sched_seed = 1L)
    ?(jitter = 0.) ?(cost = Rfdet_sim.Cost.default) ?(trace = 0) ?faults
    ?(failure_mode = Engine.Contain) ?recover_config
    ?(obs = Rfdet_obs.Sink.null) ?sched_tap runtime workload =
  let cfg = { Workload.threads; scale; input_seed } in
  (* An explicit Recover applies even without a fault plan (deadlock
     victims need no injector); otherwise the mode only takes effect
     when a plan is given, so fault-free runs keep the engine default
     of aborting on failure. *)
  let effective_mode =
    match faults, failure_mode with
    | _, Engine.Recover -> Engine.Recover
    | None, _ -> Engine.default_config.failure_mode
    | Some _, m -> m
  in
  let config =
    {
      Engine.default_config with
      cost;
      seed = sched_seed;
      jitter_mean = jitter;
      trace_capacity = trace;
      failure_mode = effective_mode;
      (* a fresh injector per run: occurrence counters are mutable *)
      inject = Option.map Rfdet_fault.Fault_plan.injector faults;
      sched_tap;
      obs;
    }
  in
  let main = workload.Workload.main cfg in
  (* Under Recover, runtimes with a Kendo sync layer get a recovery
     manager: restartable spawns, lock healing, deadlock victims.  The
     fence baselines (dthreads, coredet) and pthreads have no
     per-thread recovery path and run unmanaged. *)
  let maker engine =
    let base, hooks =
      match runtime with
      | Rfdet opts ->
        let state, policy =
          Rfdet_core.Rfdet_runtime.make_with_state ~opts engine
        in
        ( policy,
          Some
            {
              Recover.rh_sync = Some (Rfdet_core.Rfdet_runtime.sync state);
              prepare_restart =
                (fun ~tid ->
                  Rfdet_core.Rfdet_runtime.crash_recoverable state ~tid);
            } )
      | Kendo ->
        let sync, policy =
          Rfdet_baselines.Kendo_runtime.make_with_sync engine
        in
        ( policy,
          Some
            {
              Recover.rh_sync = Some sync;
              prepare_restart = (fun ~tid:_ -> ());
            } )
      | Pthreads | Dthreads | Coredet -> ((make_policy runtime) engine, None)
    in
    match effective_mode, hooks with
    | Engine.Recover, Some hooks ->
      let mgr = Recover.create ?config:recover_config engine hooks in
      Recover.register mgr ~tid:0 main;
      Recover.attach mgr base
    | _ -> base
  in
  let t0 = Unix.gettimeofday () in
  let r = Engine.run ~config maker ~main in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    runtime = runtime_name runtime;
    workload = workload.Workload.name;
    sim_time = r.Engine.sim_time;
    wall_seconds;
    signature = Engine.output_signature r;
    output_checksum = Engine.outputs_checksum r;
    outputs = r.Engine.outputs;
    profile = r.Engine.profile;
    threads = r.Engine.threads;
    ops = r.Engine.ops;
    trace = r.Engine.trace;
    crashes = r.Engine.crashes;
    thread_clocks = r.Engine.thread_clocks;
  }
