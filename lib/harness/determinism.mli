(** The determinism checker — the paper's Section 5.1 experiment.

    Runs a workload repeatedly under a runtime while varying the
    scheduler seed (with jitter enabled, so the simulated OS interleaves
    differently every run) and collects the distinct output signatures.
    A strongly deterministic runtime must yield exactly one signature;
    pthreads on racy programs should yield several. *)

type report = {
  runtime : string;
  workload : string;
  threads : int;
  runs : int;
  distinct_signatures : int;
  deterministic : bool;
  divergence : ((int64 * string) * (int64 * string)) option;
      (** when not deterministic: two (scheduler seed, signature)
          witnesses that disagree — the first run and the first run that
          diverged from it, so a failure is immediately replayable with
          [Runner.run ~sched_seed].  [None] when deterministic. *)
}

val check :
  ?threads:int ->
  ?scale:float ->
  ?runs:int ->
  ?jitter:float ->
  ?faults:Rfdet_fault.Fault_plan.t ->
  ?jobs:int ->
  Runner.runtime ->
  Rfdet_workloads.Workload.t ->
  report
(** Defaults: 4 threads, 20 runs, jitter 12.0, no faults, [jobs = 1].
    [jobs] spreads the seeded repeat runs over that many host domains
    ([Rfdet_par.Par]); the report is byte-identical for every [jobs]
    value — runs are independent and results fold in seed order. *)

val check_faults :
  ?threads:int ->
  ?scale:float ->
  ?runs:int ->
  ?jitter:float ->
  ?jobs:int ->
  plan:Rfdet_fault.Fault_plan.t ->
  Runner.runtime ->
  Rfdet_workloads.Workload.t ->
  report * (int * string) list
(** Fault determinism: same seed + same fault plan across jittered runs
    must give one signature, crash outcomes included.  Also returns the
    contained crashes of a representative run.

    Raises [Invalid_argument] when the plan contains a wildcard-tid
    site and jitter is nonzero: such sites count operations in global
    scheduler order, so the check would measure the injector's own
    schedule-dependence rather than the runtime's determinism.
    Qualify sites with [tid=K] or pass [~jitter:0.]. *)

val pp_report : Format.formatter -> report -> unit
