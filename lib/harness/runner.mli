(** Run a workload under a chosen runtime and collect results. *)

type runtime =
  | Pthreads  (** nondeterministic baseline *)
  | Kendo  (** weak determinism: deterministic sync, shared memory *)
  | Dthreads  (** strong determinism with global fences *)
  | Coredet  (** strong determinism with instruction-quantum barriers *)
  | Rfdet of Rfdet_core.Options.t  (** this paper *)

val runtime_name : runtime -> string

val rfdet_ci : runtime

val rfdet_pf : runtime

val all_runtimes : runtime list
(** The four bars of Figure 7 plus the Kendo reference. *)

val named_runtimes : (string * runtime) list
(** The CLI-facing runtime vocabulary, in presentation order — the
    single source of truth for `--runtime` parsing and for the runtime
    field of record/replay journal headers. *)

val runtime_of_name : string -> runtime option
(** Resolve a [named_runtimes] name (e.g. ["rfdet-noopt"]). *)

val cli_name : runtime -> string
(** The [named_runtimes] name for a runtime when it has one (so
    [runtime_of_name (cli_name r) = Some r]), else [runtime_name r]. *)

val make_policy : runtime -> Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy

type run_result = {
  runtime : string;
  workload : string;
  sim_time : int;  (** simulated cycles (the run's makespan) *)
  wall_seconds : float;  (** host time spent simulating *)
  signature : string;  (** digest of observable outputs *)
  output_checksum : string;
      (** digest of outputs only, ignoring crash records
          ([Engine.outputs_checksum]) — a fully recovered run matches
          the fault-free run here even though [signature] differs *)
  outputs : (int * int64) list;
  profile : Rfdet_sim.Profile.t;
  threads : int;
  ops : int;
  trace : Rfdet_sim.Engine.trace_entry list;  (** empty unless requested *)
  crashes : (int * string) list;
      (** contained thread crashes, (tid, exception text) by tid;
          empty for clean runs *)
  thread_clocks : (int * int) list;
      (** every thread's final simulated clock, by tid — their sum is the
          total of the [Rfdet_obs.Report] time breakdown *)
}

val run :
  ?threads:int ->
  ?scale:float ->
  ?input_seed:int64 ->
  ?sched_seed:int64 ->
  ?jitter:float ->
  ?cost:Rfdet_sim.Cost.t ->
  ?trace:int ->
  ?faults:Rfdet_fault.Fault_plan.t ->
  ?failure_mode:Rfdet_sim.Engine.failure_mode ->
  ?recover_config:Rfdet_recover.Recover.config ->
  ?obs:Rfdet_obs.Sink.t ->
  ?sched_tap:(Rfdet_sim.Engine.decision -> unit) ->
  runtime ->
  Rfdet_workloads.Workload.t ->
  run_result
(** Defaults: 4 threads, scale 1.0, input seed 42, scheduler seed 1,
    jitter 0 (performance runs should be noise-free; determinism checks
    pass a nonzero jitter and vary [sched_seed]).  [faults] runs the
    workload under an injected fault plan; [failure_mode] (default
    [Contain]) only applies when a plan is given — fault-free runs keep
    the engine default of aborting on failure — except that an explicit
    [Recover] always applies (deadlock victims need no fault plan).
    Under [Recover], the RFDet and Kendo runtimes get a
    [Rfdet_recover.Recover] manager (tuned by [recover_config]): every
    spawned thread is restartable from entry, the main thread from the
    workload start.  [obs] (default disabled) collects the causal
    trace; enabling it never changes signatures.  [sched_tap] observes
    the scheduler's free decisions (the record/replay journal feed, see
    [Rfdet_sim.Engine.decision]); it is purely observational and never
    changes the run. *)
