type report = {
  runtime : string;
  workload : string;
  threads : int;
  runs : int;
  distinct_signatures : int;
  deterministic : bool;
  divergence : ((int64 * string) * (int64 * string)) option;
}

let check ?(threads = 4) ?(scale = 1.0) ?(runs = 20) ?(jitter = 12.0) ?faults
    ?(jobs = 1) runtime workload =
  (* Each seeded run is a pure function of its seed (its engine, spaces,
     metadata and RNGs are all created inside Runner.run), so the repeat
     sweep fans out across domains; Par.map_ordered folds the signatures
     back in seed order, keeping the report — divergence witness
     included — byte-identical to the sequential sweep. *)
  let signatures =
    Rfdet_par.Par.map_ordered ~jobs
      (fun i ->
        let seed = Int64.of_int (i + 1) in
        let r =
          Runner.run ~threads ~scale ~sched_seed:seed ~jitter ?faults runtime
            workload
        in
        (seed, r.Runner.signature))
      (List.init runs (fun i -> i))
  in
  let distinct =
    List.length (List.sort_uniq compare (List.map snd signatures))
  in
  (* The replay recipe for a failure: the first seed and the first later
     seed that disagrees with it. *)
  let divergence =
    match signatures with
    | [] -> None
    | ((_, sig0) as first) :: rest ->
      List.find_opt (fun (_, s) -> s <> sig0) rest
      |> Option.map (fun witness -> (first, witness))
  in
  {
    runtime = Runner.runtime_name runtime;
    workload = workload.Rfdet_workloads.Workload.name;
    threads;
    runs;
    distinct_signatures = distinct;
    deterministic = distinct = 1;
    divergence;
  }

(* Fault determinism: the same seed and the same fault plan must give
   byte-identical signatures — which, post-crash-containment, fold in
   every crash outcome — across scheduling jitter.  The crashes of one
   representative run are returned for reporting. *)
let check_faults ?threads ?scale ?runs ?jitter ?jobs ~plan runtime workload =
  (* A wildcard-tid site counts matching operations in global scheduler
     order (fault_plan.mli), so under jitter it fires at different
     program points across runs — the check would report the injector's
     nondeterminism, not the runtime's.  Reject instead of silently
     producing a meaningless verdict. *)
  (if Rfdet_fault.Fault_plan.has_wildcard plan
   && Option.value jitter ~default:12.0 > 0.
  then
    invalid_arg
      "Determinism.check_faults: fault plan has a wildcard-tid site, which \
       is only deterministic under a jitter-free schedule; qualify the site \
       with tid=K or pass ~jitter:0.");
  let report =
    check ?threads ?scale ?runs ?jitter ?jobs ~faults:plan runtime workload
  in
  let witness =
    Runner.run ?threads ?scale ~sched_seed:1L ?jitter ~faults:plan runtime
      workload
  in
  (report, witness.Runner.crashes)

let pp_report ppf r =
  Format.fprintf ppf "%-10s %-18s threads=%d runs=%d distinct=%d %s" r.runtime
    r.workload r.threads r.runs r.distinct_signatures
    (if r.deterministic then "deterministic" else "NONDETERMINISTIC");
  match r.divergence with
  | None -> ()
  | Some ((seed_a, sig_a), (seed_b, sig_b)) ->
    Format.fprintf ppf " (seed %Ld -> %s, seed %Ld -> %s)" seed_a
      (String.sub sig_a 0 (min 12 (String.length sig_a)))
      seed_b
      (String.sub sig_b 0 (min 12 (String.length sig_b)))
