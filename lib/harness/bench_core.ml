(* Host-performance benchmark of the memory-pipeline primitives and two
   end-to-end workloads, with machine-readable JSON output
   (BENCH_CORE.json) — the repo's perf trajectory record.

   Times here are host nanoseconds/milliseconds, *not* simulated cycles:
   this is the file that proves a host-side optimization helped and
   catches regressions.  The end-to-end entries also record the output
   signature, which CI uses as a determinism gate (the signature must
   never change without an intentional semantic change). *)

module Diff = Rfdet_mem.Diff
module Space = Rfdet_mem.Space
module Page = Rfdet_mem.Page
module Registry = Rfdet_workloads.Registry
module Workload = Rfdet_workloads.Workload
module Par = Rfdet_par.Par

type micro = { name : string; ns_per_op : float }

type e2e = {
  workload : string;
  runtime : string;
  threads : int;
  runs : int;
  mean_wall_ms : float;
  engine_ops : int;
  ops_per_sec : float;
  sim_cycles : int;
  signature : string;
  breakdown : Rfdet_obs.Report.breakdown;
  latency : (int * int * int) option;
      (* (p50, p99, p999) served-request latency in simulated cycles —
         kvserver only, read from the server's trailing outputs *)
  attribution : Rfdet_obs.Critpath.cohort list option;
      (* critical-path latency attribution for the p50/p99/p999 cohorts,
         from the traced run's span trees — kvserver only.  Deterministic
         (virtual cycles), so CI gates on the stanza byte-for-byte. *)
}

type sweep = {
  key : string;  (* slug for the derived speedup entry *)
  sweep_name : string;
  items : int;
  jobs_max : int;
  wall_ms_jobs1 : float;
  wall_ms_jobsn : float;
  speedup : float;
  identical : bool;
      (* the parallel sweep's result equals the sequential one — the
         whole point of the domain pool; recorded so a regression shows
         up in the committed file, not just in CI *)
}

(* The decision-journal minimality stanza.  All fields are simulated
   and deterministic — the committed numbers only change when the
   journal format or the workload does.  Filled through [run]'s
   [journal_probe] callback (implemented in [Rfdet_replay.Offline],
   injected by the CLI) so this library does not depend on the replay
   layer. *)
type journal_size = {
  j_workload : string;
  j_runtime : string;
  j_threads : int;
  j_requests : int;  (** requests the recorded run served *)
  j_decisions : int;  (** arbiter decisions the journal holds *)
  j_journal_bytes : int;  (** on-disk journal size *)
  j_trace_bytes : int;  (** full causal trace of the same run *)
  j_bytes_per_request : float;  (** journal bytes per served request *)
  j_trace_ratio : float;  (** trace bytes / journal bytes *)
  j_signature : string;  (** recorded signature (determinism gate) *)
}

type t = {
  micro : micro list;
  derived : (string * float) list;
  end_to_end : e2e list;
  sweeps : sweep list;
  jobs : int;
  journal : journal_size option;
}

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

(* Nanoseconds per call: grow the iteration count until a batch runs
   long enough to dwarf timer resolution, then measure one final batch. *)
let time_ns f =
  let batch n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    Unix.gettimeofday () -. t0
  in
  let rec calibrate n =
    if batch n >= 0.01 || n >= 100_000_000 then n else calibrate (n * 4)
  in
  let n = calibrate 1 in
  let dt = batch n in
  dt *. 1e9 /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* 1% dirty: 41 isolated dirty bytes, the regime of typical slices. *)
let dirty_1pct () =
  let snapshot = Bytes.make Page.size 'a' in
  let current = Bytes.copy snapshot in
  for i = 0 to 40 do
    Bytes.set current (i * 97) 'b'
  done;
  (snapshot, current)

(* 50% dirty: alternating 64-byte blocks rewritten — the heavy-diff
   regime (barrier merges, large reductions). *)
let dirty_50pct () =
  let snapshot = Bytes.make Page.size 'a' in
  let current = Bytes.copy snapshot in
  let block = 64 in
  let i = ref 0 in
  while !i < Page.size do
    Bytes.fill current !i block 'b';
    i := !i + (2 * block)
  done;
  (snapshot, current)

(* The old per-byte application loop, kept as the microbench baseline
   for the blit-based [Diff.apply]. *)
let apply_per_byte space (d : Diff.t) =
  List.iter
    (fun (r : Diff.run) ->
      String.iteri
        (fun i c -> Space.store_byte space (r.addr + i) (Char.code c))
        r.data)
    d

(* ------------------------------------------------------------------ *)
(* The benchmark set                                                   *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  let snap1, cur1 = dirty_1pct () in
  let snap50, cur50 = dirty_50pct () in
  let d1 = Diff.diff_page ~page_id:0 ~snapshot:snap1 ~current:cur1 in
  let d50 = Diff.diff_page ~page_id:0 ~snapshot:snap50 ~current:cur50 in
  let apply_space = Space.create () in
  let apply_space_ref = Space.create () in
  let str_space = Space.create () in
  let payload = String.make 1024 'x' in
  Space.blit_string str_space ~addr:100 payload;
  let snap_space = Space.create () in
  Space.store_byte snap_space 1 7;
  let snap_buf = Bytes.create Page.size in
  [
    ( "page diff (4 KiB, 1% dirty)",
      fun () -> ignore (Diff.diff_page ~page_id:0 ~snapshot:snap1 ~current:cur1)
    );
    ( "page diff bytewise (4 KiB, 1% dirty)",
      fun () ->
        ignore (Diff.diff_page_bytewise ~page_id:0 ~snapshot:snap1 ~current:cur1)
    );
    ( "page diff (4 KiB, 50% dirty)",
      fun () ->
        ignore (Diff.diff_page ~page_id:0 ~snapshot:snap50 ~current:cur50) );
    ( "page diff bytewise (4 KiB, 50% dirty)",
      fun () ->
        ignore
          (Diff.diff_page_bytewise ~page_id:0 ~snapshot:snap50 ~current:cur50)
    );
    ("bulk apply (41 runs, 41 B)", fun () -> Diff.apply apply_space d1);
    ( "per-byte apply (41 runs, 41 B)",
      fun () -> apply_per_byte apply_space_ref d1 );
    ("bulk apply (32 runs, 2 KiB)", fun () -> Diff.apply apply_space d50);
    ( "per-byte apply (32 runs, 2 KiB)",
      fun () -> apply_per_byte apply_space_ref d50 );
    ( "blit_string (1 KiB)",
      fun () -> Space.blit_string str_space ~addr:100 payload );
    ( "read_string (1 KiB)",
      fun () -> ignore (Space.read_string str_space ~addr:100 ~len:1024) );
    ( "snapshot_page_into (pooled)",
      fun () -> Space.snapshot_page_into snap_space 0 snap_buf );
    ("snapshot_page (allocating)", fun () -> ignore (Space.snapshot_page snap_space 0));
  ]
  |> List.map (fun (name, f) -> { name; ns_per_op = time_ns f })

let find_ns micro name =
  match List.find_opt (fun m -> m.name = name) micro with
  | Some m -> m.ns_per_op
  | None -> nan

let derived_of micro =
  let ratio slow fast = find_ns micro slow /. find_ns micro fast in
  [
    ( "page_diff_1pct_speedup_vs_bytewise",
      ratio "page diff bytewise (4 KiB, 1% dirty)" "page diff (4 KiB, 1% dirty)"
    );
    ( "page_diff_50pct_speedup_vs_bytewise",
      ratio "page diff bytewise (4 KiB, 50% dirty)"
        "page diff (4 KiB, 50% dirty)" );
    ( "bulk_apply_small_speedup_vs_per_byte",
      ratio "per-byte apply (41 runs, 41 B)" "bulk apply (41 runs, 41 B)" );
    ( "bulk_apply_large_speedup_vs_per_byte",
      ratio "per-byte apply (32 runs, 2 KiB)" "bulk apply (32 runs, 2 KiB)" );
  ]

let e2e_workloads = [ ("fft", 8); ("wordcount", 8); ("kvserver", 4) ]

let e2e_runs = 5

let end_to_end () =
  List.map
    (fun (name, threads) ->
      let w = Registry.find name in
      (* one warm-up, then the measured runs *)
      ignore (Runner.run ~threads Runner.rfdet_ci w);
      let results =
        List.init e2e_runs (fun _ -> Runner.run ~threads Runner.rfdet_ci w)
      in
      let wall =
        List.fold_left (fun acc r -> acc +. r.Runner.wall_seconds) 0. results
        /. float_of_int e2e_runs
      in
      let r0 = List.hd results in
      (* one extra traced run for the time breakdown — outside the timed
         set so the sink's host cost never touches the wall numbers *)
      let obs = Rfdet_obs.Sink.create () in
      let rt = Runner.run ~threads ~obs Runner.rfdet_ci w in
      let total =
        List.fold_left (fun acc (_, c) -> acc + c) 0 rt.Runner.thread_clocks
      in
      let breakdown =
        Rfdet_obs.Report.breakdown ~total (Rfdet_obs.Sink.events obs)
      in
      (* the server emits ..., p50, p99, p999, makespan as its last
         outputs (see Server.run) *)
      let latency =
        if name <> "kvserver" then None
        else
          match List.rev r0.Runner.outputs with
          | (_, _mk) :: (_, p999) :: (_, p99) :: (_, p50) :: _ ->
            Some (Int64.to_int p50, Int64.to_int p99, Int64.to_int p999)
          | _ -> None
      in
      (* the traced run also carries the request span trees; walking
         them is offline, so again nothing touches the wall numbers *)
      let attribution =
        if name <> "kvserver" then None
        else
          let spans =
            Rfdet_obs.Span.collect (Rfdet_obs.Sink.events obs)
          in
          match Rfdet_obs.Critpath.walk_all spans.Rfdet_obs.Span.complete with
          | Ok atts -> Some (Rfdet_obs.Critpath.cohorts atts)
          | Error msg ->
            failwith ("kvserver latency attribution: " ^ msg)
      in
      {
        workload = name;
        runtime = r0.Runner.runtime;
        threads;
        runs = e2e_runs;
        mean_wall_ms = wall *. 1000.;
        engine_ops = r0.Runner.ops;
        ops_per_sec = float_of_int r0.Runner.ops /. wall;
        sim_cycles = r0.Runner.sim_time;
        signature = r0.Runner.signature;
        breakdown;
        latency;
        attribution;
      })
    e2e_workloads

(* ------------------------------------------------------------------ *)
(* Sweep throughput (the domain pool's win)                            *)
(* ------------------------------------------------------------------ *)

(* Wall-time one whole harness sweep at jobs=1 and jobs=N.  The sweeps
   are the real commands CI runs (determinism repeat-runs, the kvserver
   arrival-rate sweep), so the speedup measures exactly what a user of
   --jobs sees.  [identical] re-checks the byte-identity contract on
   the measured results themselves. *)
let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let kv_sweep_report ~rate =
  let module Server = Rfdet_server.Server in
  let module Traffic = Rfdet_server.Traffic in
  let p =
    {
      Rfdet_server.Server.default with
      Server.traffic =
        {
          Traffic.default with
          Traffic.requests = 2000;
          mean_interarrival = rate;
        };
    }
  in
  let report = ref None in
  let w =
    {
      Workload.name = "kvserver";
      suite = "server";
      description = "bench sweep kvserver";
      main =
        (fun cfg () ->
          report := Some (Server.run ~seed:cfg.Workload.input_seed p));
    }
  in
  ignore (Runner.run ~threads:p.Server.workers Runner.rfdet_ci w);
  Option.get !report

let sweeps ~jobs =
  let one ~key ~name ~items ~eq f =
    let r1, t1 = time_wall (fun () -> f 1) in
    let rn, tn = time_wall (fun () -> f jobs) in
    {
      key;
      sweep_name = name;
      items;
      jobs_max = jobs;
      wall_ms_jobs1 = t1;
      wall_ms_jobsn = tn;
      speedup = t1 /. tn;
      identical = eq r1 rn;
    }
  in
  [
    one ~key:"determinism_sweep" ~name:"determinism wordcount (12 runs)"
      ~items:12 ~eq:( = )
      (fun jobs ->
        Determinism.check ~threads:4 ~runs:12 ~jobs Runner.rfdet_ci
          (Registry.find "wordcount"));
    one ~key:"kvserver_rate_sweep" ~name:"kvserver rate sweep (10 rates)"
      ~items:(List.length Rfdet_server.Sweep.default_rates)
      ~eq:(fun a b ->
        String.equal (Rfdet_server.Sweep.to_json a)
          (Rfdet_server.Sweep.to_json b))
      (fun jobs -> Rfdet_server.Sweep.run ~jobs ~f:kv_sweep_report ());
  ]

let run ?jobs ?journal_probe () =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let micro = microbenches () in
  let sweeps = sweeps ~jobs in
  let derived =
    derived_of micro
    @ List.map (fun s -> (s.key ^ "_parallel_speedup", s.speedup)) sweeps
  in
  let journal = Option.map (fun probe -> probe ()) journal_probe in
  { micro; derived; end_to_end = end_to_end (); sweeps; jobs; journal }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* No timestamps: the committed BENCH_CORE.json should only change when
   the numbers do, and CI diffs its signature lines. *)
let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"rfdet-bench-core/1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"host\": { \"ocaml\": \"%s\", \"word_size\": %d, \"jobs\": %d, \
        \"recommended_domain_count\": %d },\n"
       (json_escape Sys.ocaml_version) Sys.word_size t.jobs
       (Domain.recommended_domain_count ()));
  Buffer.add_string b "  \"microbench\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"ns_per_op\": %.1f, \"ops_per_sec\": %.0f \
            }%s\n"
           (json_escape m.name) m.ns_per_op
           (1e9 /. m.ns_per_op)
           (if i = List.length t.micro - 1 then "" else ",")))
    t.micro;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"derived\": {\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %.2f%s\n" (json_escape k) v
           (if i = List.length t.derived - 1 then "" else ",")))
    t.derived;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"sweep_throughput\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"items\": %d, \"jobs\": %d, \
            \"wall_ms_jobs1\": %.1f, \"wall_ms_jobsN\": %.1f, \
            \"speedup\": %.2f, \"identical\": %b }%s\n"
           (json_escape s.sweep_name) s.items s.jobs_max s.wall_ms_jobs1
           s.wall_ms_jobsn s.speedup s.identical
           (if i = List.length t.sweeps - 1 then "" else ",")))
    t.sweeps;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"end_to_end\": [\n";
  List.iteri
    (fun i e ->
      let bd = e.breakdown in
      let share c =
        if bd.Rfdet_obs.Report.total = 0 then 0.
        else float_of_int c /. float_of_int bd.Rfdet_obs.Report.total
      in
      let latency_json =
        match e.latency with
        | None -> ""
        | Some (p50, p99, p999) ->
          Printf.sprintf
            "      \"latency\": { \"p50\": %d, \"p99\": %d, \"p999\": %d },\n"
            p50 p99 p999
      in
      let attribution_json =
        match e.attribution with
        | None -> ""
        | Some cohorts ->
          "      \"latency_attribution\": {\n"
          ^ String.concat ",\n"
              (List.map
                 (fun (c : Rfdet_obs.Critpath.cohort) ->
                   Printf.sprintf "        \"%s\": %s" c.Rfdet_obs.Critpath.label
                     (Rfdet_obs.Critpath.cohort_json c))
                 cohorts)
          ^ "\n      },\n"
      in
      Buffer.add_string b
        (Printf.sprintf
           "    { \"workload\": \"%s\", \"runtime\": \"%s\", \"threads\": %d, \
            \"runs\": %d, \"mean_wall_ms\": %.2f, \"engine_ops\": %d, \
            \"ops_per_sec\": %.0f, \"sim_cycles\": %d,\n\
           \      \"signature\": \"%s\",\n\
            %s%s\
           \      \"breakdown\": { \"thread_cycles\": %d, \
            \"compute_share\": %.4f, \"wait_share\": %.4f, \
            \"propagate_share\": %.4f, \"diff_share\": %.4f, \
            \"gc_share\": %.4f, \"monitor_share\": %.4f } }%s\n"
           (json_escape e.workload) (json_escape e.runtime) e.threads e.runs
           e.mean_wall_ms e.engine_ops e.ops_per_sec e.sim_cycles
           (json_escape e.signature) latency_json attribution_json
           bd.Rfdet_obs.Report.total
           (share bd.Rfdet_obs.Report.compute)
           (share bd.Rfdet_obs.Report.wait)
           (share bd.Rfdet_obs.Report.propagate)
           (share bd.Rfdet_obs.Report.diff)
           (share bd.Rfdet_obs.Report.gc)
           (share bd.Rfdet_obs.Report.monitor)
           (if i = List.length t.end_to_end - 1 then "" else ",")))
    t.end_to_end;
  Buffer.add_string b "  ],\n";
  (match t.journal with
  | None -> Buffer.add_string b "  \"journal\": null\n"
  | Some j ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"journal\": { \"workload\": \"%s\", \"runtime\": \"%s\", \
          \"threads\": %d, \"requests\": %d, \"decisions\": %d, \
          \"journal_bytes\": %d, \"trace_bytes\": %d, \
          \"bytes_per_request\": %.2f, \"trace_ratio\": %.1f,\n\
         \    \"signature\": \"%s\" }\n"
         (json_escape j.j_workload) (json_escape j.j_runtime) j.j_threads
         j.j_requests j.j_decisions j.j_journal_bytes j.j_trace_bytes
         j.j_bytes_per_request j.j_trace_ratio (json_escape j.j_signature)));
  Buffer.add_string b "}\n";
  Buffer.contents b

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Core-primitive microbenchmarks (host time):\n";
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "  %-42s %10.1f ns/op %14.0f ops/s\n" m.name
           m.ns_per_op
           (1e9 /. m.ns_per_op)))
    t.micro;
  Buffer.add_string b "\nDerived speedups:\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-42s %8.2fx\n" k v))
    t.derived;
  Buffer.add_string b
    (Printf.sprintf "\nSweep throughput (domain pool, %d jobs):\n" t.jobs);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-36s %8.1f ms seq %8.1f ms par  %5.2fx  %s\n" s.sweep_name
           s.wall_ms_jobs1 s.wall_ms_jobsn s.speedup
           (if s.identical then "byte-identical" else "RESULTS DIVERGED")))
    t.sweeps;
  Buffer.add_string b "\nEnd-to-end (host wall time):\n";
  List.iter
    (fun e ->
      let bd = e.breakdown in
      let pct c =
        if bd.Rfdet_obs.Report.total = 0 then 0.
        else 100. *. float_of_int c /. float_of_int bd.Rfdet_obs.Report.total
      in
      Buffer.add_string b
        (Printf.sprintf
           "  %-12s %-10s t=%d  %8.2f ms/run  %12.0f engine-ops/s  sig=%s\n\
           \               breakdown: compute %.1f%% wait %.1f%% propagate \
            %.1f%% diff %.1f%% gc %.1f%% monitor %.1f%%\n"
           e.workload e.runtime e.threads e.mean_wall_ms e.ops_per_sec
           e.signature
           (pct bd.Rfdet_obs.Report.compute)
           (pct bd.Rfdet_obs.Report.wait)
           (pct bd.Rfdet_obs.Report.propagate)
           (pct bd.Rfdet_obs.Report.diff)
           (pct bd.Rfdet_obs.Report.gc)
           (pct bd.Rfdet_obs.Report.monitor));
      (match e.latency with
      | None -> ()
      | Some (p50, p99, p999) ->
        Buffer.add_string b
          (Printf.sprintf
             "               latency: p50=%d p99=%d p999=%d simulated cycles\n"
             p50 p99 p999));
      match e.attribution with
      | None -> ()
      | Some cohorts ->
        List.iter
          (fun (c : Rfdet_obs.Critpath.cohort) ->
            Buffer.add_string b
              (Printf.sprintf "               %s attribution:%s\n"
                 c.Rfdet_obs.Critpath.label
                 (String.concat ""
                    (List.map
                       (fun (l, s) ->
                         Printf.sprintf " %s %d.%d%%" l (s / 10) (s mod 10))
                       c.Rfdet_obs.Critpath.shares_pm))))
          cohorts)
    t.end_to_end;
  (match t.journal with
  | None -> ()
  | Some j ->
    Buffer.add_string b
      (Printf.sprintf
         "\nDecision-journal minimality (%s, %s, t=%d):\n\
         \  %d requests -> %d decisions, %d journal bytes (%.2f B/request)\n\
         \  full causal trace of the same run: %d bytes (%.1fx larger)\n"
         j.j_workload j.j_runtime j.j_threads j.j_requests j.j_decisions
         j.j_journal_bytes j.j_bytes_per_request j.j_trace_bytes
         j.j_trace_ratio));
  Buffer.contents b

let write_json ~path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc
