(** Host-performance benchmark of the memory-pipeline primitives plus
    two end-to-end workloads, emitting the machine-readable
    [BENCH_CORE.json] that seeds the repo's perf trajectory.

    Unlike the rest of the harness, the numbers here are {e host}
    nanoseconds and milliseconds — the point is to prove host-side
    optimizations and catch regressions.  Each end-to-end entry also
    records the run's output signature; CI compares those against the
    committed file as a cheap determinism gate. *)

type micro = { name : string; ns_per_op : float }

type e2e = {
  workload : string;
  runtime : string;
  threads : int;
  runs : int;
  mean_wall_ms : float;  (** mean over [runs] measured runs, post warm-up *)
  engine_ops : int;
  ops_per_sec : float;  (** engine ops per host second *)
  sim_cycles : int;
  signature : string;  (** output signature — the determinism gate *)
  breakdown : Rfdet_obs.Report.breakdown;
      (** Figure-7-style attribution from a traced run — simulated
          cycles, so deterministic; its shares land in the JSON *)
  latency : (int * int * int) option;
      (** (p50, p99, p999) served-request latency in simulated cycles —
          present for the kvserver entry only *)
  attribution : Rfdet_obs.Critpath.cohort list option;
      (** critical-path latency attribution for the p50/p99/p999
          cohorts, walked from the traced run's span trees — kvserver
          only.  Virtual cycles, so the JSON stanza is deterministic
          and CI gates on it byte-for-byte. *)
}

type sweep = {
  key : string;  (** slug naming the derived [_parallel_speedup] entry *)
  sweep_name : string;
  items : int;  (** independent simulated runs in the sweep *)
  jobs_max : int;  (** domains used for the parallel measurement *)
  wall_ms_jobs1 : float;
  wall_ms_jobsn : float;
  speedup : float;  (** [wall_ms_jobs1 /. wall_ms_jobsn] *)
  identical : bool;
      (** the parallel sweep returned exactly the sequential result —
          the domain pool's byte-identity contract, re-checked on the
          measured runs themselves *)
}

(** Log-minimality numbers for the decision journal (`rfdet record`):
    journal bytes vs. the full causal trace of the same run.  Every
    field is simulated/deterministic, so the committed stanza only
    changes when the journal format or the workload does — CI gates on
    journal_bytes < trace_bytes. *)
type journal_size = {
  j_workload : string;
  j_runtime : string;
  j_threads : int;
  j_requests : int;  (** requests the recorded run served *)
  j_decisions : int;  (** arbiter decisions the journal holds *)
  j_journal_bytes : int;  (** on-disk journal size *)
  j_trace_bytes : int;  (** full causal trace of the same run *)
  j_bytes_per_request : float;  (** journal bytes per served request *)
  j_trace_ratio : float;  (** trace bytes / journal bytes *)
  j_signature : string;  (** recorded signature (determinism gate) *)
}

type t = {
  micro : micro list;
  derived : (string * float) list;
      (** named speedup ratios, e.g. word diff vs bytewise, plus one
          [<key>_parallel_speedup] per sweep entry *)
  end_to_end : e2e list;
  sweeps : sweep list;
      (** whole-sweep wall times at jobs 1 vs [jobs] — the domain
          pool's throughput win on the sweeps CI actually runs *)
  jobs : int;  (** domains used for the sweep measurements *)
  journal : journal_size option;
      (** present when [run] was given a [journal_probe] *)
}

(** [run ()] executes the full benchmark set (a few seconds).  [jobs]
    (default [Rfdet_par.Par.default_jobs ()]) sets the parallel side of
    the sweep-throughput measurements.  [journal_probe] (the CLI passes
    [Rfdet_replay.Offline.bench_probe]; this library cannot depend on
    the replay layer itself) fills the [journal] stanza. *)
val run : ?jobs:int -> ?journal_probe:(unit -> journal_size) -> unit -> t

(** [to_json t] — the BENCH_CORE.json document (no timestamps, so the
    committed file only changes when the numbers do). *)
val to_json : t -> string

(** [render t] — human-readable table. *)
val render : t -> string

val write_json : path:string -> t -> unit
