(* The pool hands work out as an atomic index race over the input array
   and writes each result into the slot of its input index, so the
   visible output is a pure function of the inputs no matter which
   domain ran which item or in what order they finished.  All
   cross-domain signalling goes through one mutex + two condition
   variables; item results are published by the completion handshake
   (the submitter only reads the slots after observing, under the
   mutex, that the job's pending count reached zero). *)

type job = {
  run : int -> unit;  (* evaluate item [i] into its slot; never raises *)
  n : int;
  next : int Atomic.t;  (* next unclaimed input index *)
  pending : int Atomic.t;  (* items not yet completed *)
}

type pool = {
  njobs : int;
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  work_cv : Condition.t;  (* a new job was submitted, or shutdown *)
  done_cv : Condition.t;  (* the current job completed *)
  mutable current : job option;
  mutable seq : int;  (* job sequence number, to keep idle workers from
                         re-entering a job they already drained *)
  mutable stop : bool;
}

(* Claim and run items until the job is exhausted; whoever completes the
   last item retires the job and wakes the submitter. *)
let drain pool job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.run i;
      let remaining = Atomic.fetch_and_add job.pending (-1) - 1 in
      if remaining = 0 then begin
        Mutex.lock pool.m;
        pool.current <- None;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.m
      end;
      claim ()
    end
  in
  claim ()

let worker pool () =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    let no_new_work () =
      match pool.current with None -> true | Some _ -> pool.seq = !last
    in
    while no_new_work () && not pool.stop do
      Condition.wait pool.work_cv pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      let job = Option.get pool.current in
      last := pool.seq;
      Mutex.unlock pool.m;
      drain pool job;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs <= 0 then
    invalid_arg (Printf.sprintf "Par.create: jobs must be >= 1 (got %d)" jobs);
  let pool =
    {
      njobs = jobs;
      domains = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      seq = 0;
      stop = false;
    }
  in
  pool.domains <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let jobs pool = pool.njobs

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

type 'b slot = Empty | Ok_slot of 'b | Exn_slot of exn * Printexc.raw_backtrace

let map_pool pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when pool.njobs = 1 -> List.map f xs
  | xs ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n Empty in
    let run i =
      results.(i) <-
        (match f input.(i) with
        | v -> Ok_slot v
        | exception e -> Exn_slot (e, Printexc.get_raw_backtrace ()))
    in
    let job = { run; n; next = Atomic.make 0; pending = Atomic.make n } in
    Mutex.lock pool.m;
    pool.current <- Some job;
    pool.seq <- pool.seq + 1;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    (* the submitting domain is a worker too *)
    drain pool job;
    Mutex.lock pool.m;
    let still_running () =
      match pool.current with Some j -> j == job | None -> false
    in
    while still_running () do
      Condition.wait pool.done_cv pool.m
    done;
    Mutex.unlock pool.m;
    (* Fold in input order; the first failing index re-raises, matching
       the exception a sequential List.map would have let escape. *)
    Array.to_list
      (Array.map
         (function
           | Ok_slot v -> v
           | Exn_slot (e, bt) -> Printexc.raise_with_backtrace e bt
           | Empty -> assert false)
         results)

let map_ordered ~jobs f xs =
  if jobs <= 0 then
    invalid_arg
      (Printf.sprintf "Par.map_ordered: jobs must be >= 1 (got %d)" jobs);
  if jobs = 1 then List.map f xs
  else begin
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> map_pool pool f xs)
  end

let max_default_jobs = 16

let default_jobs () =
  match Sys.getenv_opt "RFDET_JOBS" with
  | None | Some "" ->
    max 1 (min max_default_jobs (Domain.recommended_domain_count ()))
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ ->
      invalid_arg
        (Printf.sprintf
           "RFDET_JOBS=%S: expected a positive integer job count" s))
