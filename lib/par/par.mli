(** A fixed-size OCaml 5 domain pool with a deterministic map API.

    The harness sweeps (repeat-run determinism checks, crash-clinic
    grids, schedule sampling, rate sweeps) are embarrassingly parallel:
    hundreds of independent simulated runs, each a pure function of its
    inputs.  This module runs them on all host cores while keeping every
    observable result {e independent of scheduling}:

    - results are collected into a slot per input index and folded in
      {b input order}, whatever order the domains finish in;
    - when items raise, the exception that escapes is the one raised by
      the {b lowest-index} failing item (with its backtrace), matching
      what sequential [List.map] would have thrown — so parallel and
      sequential sweeps fail identically too;
    - [jobs = 1] never spawns a domain: the sequential escape hatch is
      always available and is the literal [List.map] code path.

    Domain-safety contract for callers: the function passed to a map
    runs concurrently on up to [jobs] domains, so it must not touch
    shared mutable state — every simulated run must own its engine,
    spaces, metadata, RNGs and sinks.  The engine and harness satisfy
    this by construction (all their state hangs off per-run values);
    see the audit table in DESIGN.md §13. *)

type pool
(** A fixed-size set of worker domains that can execute successive maps
    without respawning.  A pool accepts one map at a time (submissions
    are from the owning domain only; maps do not nest). *)

val create : jobs:int -> pool
(** [create ~jobs] spawns [jobs - 1] worker domains (the submitting
    domain is the [jobs]-th worker).  Raises [Invalid_argument] when
    [jobs <= 0].  [jobs = 1] spawns nothing. *)

val jobs : pool -> int

val shutdown : pool -> unit
(** Joins the worker domains.  Idempotent.  The pool must be idle. *)

val map_pool : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic ordered map on an existing pool: results (and the
    choice of escaping exception) are those of [List.map f xs],
    regardless of how the items were scheduled across domains.  Unlike
    [List.map], every item is evaluated even when an early one raises
    (there is no cross-domain cancellation). *)

val map_ordered : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_ordered ~jobs f xs] = [map_pool] on a transient pool of
    [jobs] workers ([create], map, [shutdown]).  [jobs = 1] is exactly
    [List.map f xs].  Raises [Invalid_argument] when [jobs <= 0]. *)

val default_jobs : unit -> int
(** The job count used when the user does not pass [--jobs]: the
    [RFDET_JOBS] environment variable when set, otherwise
    [Domain.recommended_domain_count ()] capped at [max_default_jobs].
    Always [>= 1].  Raises [Invalid_argument] with a clear message when
    [RFDET_JOBS] is set but not a positive integer. *)

val max_default_jobs : int
(** Cap on the implicit default (explicit [--jobs]/[RFDET_JOBS] may
    exceed it): spawning more domains than cores only adds overhead,
    and far-oversubscribed pools slow the minor GC down. *)
