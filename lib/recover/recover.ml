module Engine = Rfdet_sim.Engine
module Op = Rfdet_sim.Op
module Sync = Rfdet_kendo.Sync
module Det_rng = Rfdet_util.Det_rng

exception Deadlock_victim

type config = { max_restarts : int; backoff_base : int; seed : int64 }

let default_config = { max_restarts = 3; backoff_base = 1_000; seed = 0x5EEDL }

type runtime_hooks = {
  rh_sync : Sync.t option;
  prepare_restart : tid:int -> unit;
}

let no_hooks = { rh_sync = None; prepare_restart = (fun ~tid:_ -> ()) }

type registration = { mutable body : unit -> unit; mutable mark : int }

type t = {
  engine : Engine.t;
  config : config;
  hooks : runtime_hooks;
  registry : (int, registration) Hashtbl.t;
  attempts : (int, int) Hashtbl.t;
}

let create ?(config = default_config) engine hooks =
  {
    engine;
    config;
    hooks;
    registry = Hashtbl.create 8;
    attempts = Hashtbl.create 8;
  }

let attempts t ~tid = Option.value (Hashtbl.find_opt t.attempts tid) ~default:0

let emit t ~tid ~action ~target ~attempt ~cycles =
  let obs = Engine.obs t.engine in
  if Rfdet_obs.Sink.enabled obs then
    Rfdet_obs.Sink.emit obs ~tid
      ~time:(Engine.clock t.engine tid)
      (Rfdet_obs.Trace.Recovery { action; target; attempt; cycles })

let register t ~tid body =
  let mark = Engine.output_count t.engine tid in
  match Hashtbl.find_opt t.registry tid with
  | Some r ->
    r.body <- body;
    r.mark <- mark
  | None -> Hashtbl.replace t.registry tid { body; mark }

let restartable t body = register t ~tid:(Engine.current_tid t.engine) body

(* Deterministic exponential backoff in simulated cycles: base doubles
   per attempt, plus a jitter term drawn from a generator keyed by
   (seed, tid, attempt) — no global RNG state, so concurrent restarts
   cannot perturb each other's delays. *)
let backoff_cycles t ~tid ~attempt =
  let base = max 1 t.config.backoff_base in
  let expo = base * (1 lsl min attempt 16) in
  let key =
    Int64.logxor t.config.seed
      (Int64.of_int ((tid * 0x9E3779B9) lxor (attempt * 0x85EBCA6B)))
  in
  expo + Det_rng.int (Det_rng.create key) base

let try_restart t ~tid =
  match Hashtbl.find_opt t.registry tid with
  | None -> false
  | Some r ->
    let attempt = attempts t ~tid in
    if attempt >= t.config.max_restarts then false
    else begin
      Hashtbl.replace t.attempts tid (attempt + 1);
      let prof = Engine.profile t.engine in
      (* memory first (discard the open slice, roll the private view
         back to the last release point), then the sync layer (purge
         queues, poison held mutexes and pass them on, retract barrier
         arrivals) — same order as the containment path *)
      t.hooks.prepare_restart ~tid;
      (match t.hooks.rh_sync with
      | Some sync -> Sync.on_thread_crash_recoverable sync ~tid
      | None -> ());
      let backoff = backoff_cycles t ~tid ~attempt in
      prof.restarts <- prof.restarts + 1;
      prof.backoff_cycles <- prof.backoff_cycles + backoff;
      emit t ~tid ~action:"restart" ~target:tid ~attempt:(attempt + 1)
        ~cycles:0;
      emit t ~tid ~action:"backoff" ~target:tid ~attempt:(attempt + 1)
        ~cycles:backoff;
      (match t.hooks.rh_sync with
      | Some sync -> Sync.on_thread_restarted sync ~tid
      | None -> ());
      Engine.restart_thread t.engine ~tid ~body:r.body
        ~not_before:(Engine.clock t.engine tid + backoff)
        ~keep_outputs:r.mark;
      true
    end

let on_deadlock t () =
  match t.hooks.rh_sync with
  | None -> false
  | Some sync -> (
    match Sync.deadlock_victim sync with
    | None -> false
    | Some victim ->
      let prof = Engine.profile t.engine in
      prof.deadlock_victims <- prof.deadlock_victims + 1;
      emit t ~tid:victim ~action:"victim" ~target:victim
        ~attempt:(attempts t ~tid:victim + 1)
        ~cycles:0;
      (* crash the victim through the regular fault path: if it is
         restartable it replays (its poisoned locks pass to the other
         cycle members, breaking the cycle); otherwise containment
         applies.  Either way the stall is resolved, satisfying the
         progress contract of [Engine.set_on_deadlock]. *)
      Engine.kill t.engine ~tid:victim Deadlock_victim;
      true)

let attach t (policy : Engine.policy) : Engine.policy =
  Engine.set_on_deadlock t.engine (fun () -> on_deadlock t ());
  (* [Api.checkpoint] moves a thread's restart point forward, past
     one-shot prologue work (a start gate, a handshake) that must not
     be replayed into its own post-state. *)
  Engine.set_on_checkpoint t.engine (fun ~tid body -> register t ~tid body);
  let handle ~tid op =
    match (op : Op.t) with
    | Op.Spawn body ->
      (* every spawned thread is restartable from its entry point by
         default; an explicit [restartable] call later moves the
         restart point forward (checkpoint) *)
      let rec wrapped () =
        register t ~tid:(Engine.current_tid t.engine) wrapped;
        body ()
      in
      policy.handle ~tid (Op.Spawn wrapped)
    | _ -> policy.handle ~tid op
  in
  let on_thread_crash ~tid e =
    if not (try_restart t ~tid) then policy.on_thread_crash ~tid e
  in
  { policy with Engine.handle; on_thread_crash }
