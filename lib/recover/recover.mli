(** Deterministic recovery manager: thread restart, deadlock victims,
    and the retry/backoff policy (see DESIGN.md section 11).

    The manager wraps a runtime's [Engine.policy] so that, under
    [Engine.Recover], a crashed thread with a registered restart
    closure is resurrected instead of contained: its open slice is
    discarded (runtime hook), its synchronization state is repaired
    without failing joiners or breaking barriers
    ([Sync.on_thread_crash_recoverable]), and the same tid re-runs the
    closure after a deterministic exponential backoff charged in
    simulated cycles.  Outputs emitted after the restart point are
    truncated so the replay re-emits them — a restartable workload's
    recovered run reproduces the fault-free [Engine.outputs_checksum].

    Everything here is a pure function of (seed, fault plan, program):
    restart order, backoff delays and deadlock-victim choice contain no
    wall-clock or scheduling-jitter dependence. *)

exception Deadlock_victim
(** The exception a deadlock victim is crashed with. *)

type config = {
  max_restarts : int;  (** per-thread retry budget (default 3) *)
  backoff_base : int;
      (** first-attempt backoff in simulated cycles; doubles per
          attempt (default 1000) *)
  seed : int64;  (** keys the per-(tid, attempt) backoff jitter *)
}

val default_config : config

type runtime_hooks = {
  rh_sync : Rfdet_kendo.Sync.t option;
      (** the runtime's Kendo synchronization layer, when it has one:
          enables queue purging, lock poisoning and deadlock-victim
          selection *)
  prepare_restart : tid:int -> unit;
      (** runtime-specific crash cleanup for a thread about to restart
          (RFDet: [Rfdet_runtime.crash_recoverable] — snapshot rollback
          of the private view) *)
}

val no_hooks : runtime_hooks
(** No sync layer, no memory cleanup — for runtimes with shared
    memory and no metadata (not generally useful alone). *)

type t

val create : ?config:config -> Rfdet_sim.Engine.t -> runtime_hooks -> t

val attach : t -> Rfdet_sim.Engine.policy -> Rfdet_sim.Engine.policy
(** Wrap the policy: spawned thread bodies are auto-registered as
    restartable from their entry point, crashes go through the
    restart/budget logic before falling back to the wrapped policy's
    containment, and the engine's total-stall hook performs
    deadlock-victim selection.  Attach exactly one manager per
    engine. *)

val register : t -> tid:int -> (unit -> unit) -> unit
(** Register (or move) [tid]'s restart closure from outside the
    thread, recording the current output count as the replay mark.
    The harness uses this for the main thread before the run starts. *)

val restartable : t -> (unit -> unit) -> unit
(** Checkpoint from inside the running thread: the closure re-executes
    the remainder of the span on restart, and outputs already emitted
    are kept. *)

val attempts : t -> tid:int -> int
(** Restarts performed so far for [tid] (for tests and reports). *)
