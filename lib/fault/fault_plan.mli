(** Declarative, deterministic fault plans.

    A plan is a list of one-shot fault {e sites}: "on thread 2's 3rd
    lock operation, crash it", "fail the 5th malloc", "delay thread 1's
    2nd unlock by 500 cycles".  [injector] compiles a plan into the
    oracle the engine consults at every operation boundary
    ([Engine.config.inject]), so a faulty run is exactly as replayable
    as a clean one: same program, same inputs, same plan — same crashes,
    same outputs, same signature.

    Concrete syntax (for [--fault-plan] and [parse]): sites separated by
    [';'], fields by [','].  The first field is the action — [crash],
    [fail] or [delay=CYCLES] — followed by optional [tid=K] (default
    any), [op=CLASS] (default [any]; see [op_class_names]) and [n=K]
    (default 1, the Nth matching operation):

    {v crash,tid=2,op=lock,n=3;fail,op=malloc,n=5 v} *)

type op_class =
  | Any_op
  | Lock_op
  | Unlock_op
  | Cond_op  (** wait, signal and broadcast *)
  | Barrier_op
  | Spawn_op
  | Join_op
  | Atomic_op
  | Malloc_op
  | Free_op
  | Load_op
  | Store_op
  | Output_op
  | Create_op  (** mutex/cond/barrier/rwlock/sem/deque creation *)
  | Compute_op  (** tick, self, yield *)
  | Rwlock_op  (** rdlock, wrlock and rwunlock *)
  | Sem_op  (** sem_acquire and sem_post *)
  | Deque_op  (** deque push, pop and steal *)

type action =
  | Crash  (** kill the thread at the boundary; see [Engine.I_crash] *)
  | Fail  (** fail the operation; see [Engine.I_fail] *)
  | Delay of int  (** stall the thread by this many cycles *)
  | Corrupt
      (** silently damage the runtime's stored metadata for this thread
          at the boundary; the operation itself proceeds normally.  The
          damage must be {e detected} later by the runtime's
          self-verifying checksums (see [Engine.I_corrupt]). *)

type site = {
  tid : int option;  (** [None] = any thread (see determinism caveat) *)
  op : op_class;
  nth : int;  (** 1-based count of matching operations *)
  action : action;
}

type t = site list

val classify : Rfdet_sim.Op.t -> op_class

val op_class_names : (string * op_class) list

val site_matches : site -> tid:int -> Rfdet_sim.Op.t -> bool

val injector : t -> tid:int -> Rfdet_sim.Op.t -> Rfdet_sim.Engine.injection
(** Compile the plan into a stateful injection oracle.  Each site fires
    at most once, on the [nth] operation matching it; when several
    sites come due on one operation the earliest in plan order wins and
    the rest fire on later matching operations.  Create a fresh
    injector per run — the occurrence counters are mutable.

    Determinism: a tid-qualified site counts that thread's own
    operation stream, so it fires at the same program point on every
    run regardless of scheduling jitter.  A wildcard-tid site counts
    operations in global scheduler order and is deterministic only
    under a deterministic schedule. *)

val has_wildcard : t -> bool
(** True when any site has [tid = None].  Such plans are deterministic
    only under a deterministic schedule — [Determinism.check_faults]
    and the CLI use this to warn or reject. *)

val parse : string -> (t, string) result

val to_string : t -> string
(** Round-trips with [parse]. *)

val pp : Format.formatter -> t -> unit

val random : seed:int64 -> tids:int list -> sites:int -> t
(** Derive a pseudorandom, tid-qualified (hence jitter-deterministic)
    plan from a seed.  Equal seeds give equal plans. *)
