module Op = Rfdet_sim.Op
module Engine = Rfdet_sim.Engine
module Det_rng = Rfdet_util.Det_rng

type op_class =
  | Any_op
  | Lock_op
  | Unlock_op
  | Cond_op
  | Barrier_op
  | Spawn_op
  | Join_op
  | Atomic_op
  | Malloc_op
  | Free_op
  | Load_op
  | Store_op
  | Output_op
  | Create_op
  | Compute_op
  | Rwlock_op
  | Sem_op
  | Deque_op

type action = Crash | Fail | Delay of int | Corrupt

type site = { tid : int option; op : op_class; nth : int; action : action }

type t = site list

let classify : Op.t -> op_class = function
  | Op.Lock _ | Op.Trylock _ | Op.Lock_timed _ | Op.Mutex_heal _ -> Lock_op
  | Op.Unlock _ -> Unlock_op
  | Op.Cond_wait _ | Op.Cond_signal _ | Op.Cond_broadcast _ -> Cond_op
  | Op.Barrier_wait _ -> Barrier_op
  | Op.Spawn _ -> Spawn_op
  | Op.Join _ -> Join_op
  | Op.Atomic _ -> Atomic_op
  | Op.Malloc _ -> Malloc_op
  | Op.Free _ -> Free_op
  | Op.Load _ -> Load_op
  | Op.Store _ -> Store_op
  | Op.Output _ -> Output_op
  | Op.Rdlock _ | Op.Wrlock _ | Op.Rwunlock _ -> Rwlock_op
  | Op.Sem_acquire _ | Op.Sem_post _ -> Sem_op
  | Op.Deque_push _ | Op.Deque_pop _ | Op.Deque_steal _ -> Deque_op
  | Op.Mutex_create | Op.Cond_create | Op.Barrier_create _ | Op.Rwlock_create
  | Op.Sem_create _ | Op.Deque_create -> Create_op
  | Op.Tick _ | Op.Self | Op.Yield | Op.Checkpoint _ | Op.Server_mark _
  | Op.Span _ ->
    Compute_op

let op_class_names =
  [
    ("any", Any_op);
    ("lock", Lock_op);
    ("unlock", Unlock_op);
    ("cond", Cond_op);
    ("barrier", Barrier_op);
    ("spawn", Spawn_op);
    ("join", Join_op);
    ("atomic", Atomic_op);
    ("malloc", Malloc_op);
    ("free", Free_op);
    ("load", Load_op);
    ("store", Store_op);
    ("output", Output_op);
    ("create", Create_op);
    ("compute", Compute_op);
    ("rwlock", Rwlock_op);
    ("sem", Sem_op);
    ("deque", Deque_op);
  ]

let op_class_name c =
  fst (List.find (fun (_, c') -> c' = c) op_class_names)

let site_matches site ~tid op =
  (match site.tid with None -> true | Some t -> t = tid)
  && (site.op = Any_op || site.op = classify op)

(* ------------------------------------------------------------------ *)
(* Injector                                                            *)
(* ------------------------------------------------------------------ *)

type armed = { site : site; mutable count : int; mutable fired : bool }

(* One-shot sites: a site fires on the [nth] operation matching it and
   never again.  When several sites become due on the same operation,
   the earliest in plan order fires; the others stay due and fire on
   the next matching operation.  Determinism note: a site with a
   concrete [tid] counts that thread's own operation stream, which is
   interleaving-independent, so its firing point is as deterministic
   as the runtime under test.  A wildcard-tid site counts matching
   operations in global scheduler order and is only deterministic when
   the schedule is (e.g. jitter-free runs). *)
let injector plan =
  let armed = List.map (fun site -> { site; count = 0; fired = false }) plan in
  fun ~tid op ->
    let due =
      List.filter_map
        (fun a ->
          if (not a.fired) && site_matches a.site ~tid op then begin
            a.count <- a.count + 1;
            if a.count >= a.site.nth then Some a else None
          end
          else None)
        armed
    in
    match due with
    | [] -> Engine.I_none
    | a :: _ ->
      a.fired <- true;
      (match a.site.action with
      | Crash -> Engine.I_crash
      | Fail -> Engine.I_fail
      | Delay d -> Engine.I_delay d
      | Corrupt -> Engine.I_corrupt)

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)
(* ------------------------------------------------------------------ *)

let to_string plan =
  let site_str s =
    let action =
      match s.action with
      | Crash -> "crash"
      | Fail -> "fail"
      | Delay d -> Printf.sprintf "delay=%d" d
      | Corrupt -> "corrupt"
    in
    let tid = match s.tid with None -> "tid=*" | Some t -> Printf.sprintf "tid=%d" t in
    Printf.sprintf "%s,%s,op=%s,n=%d" action tid (op_class_name s.op) s.nth
  in
  String.concat ";" (List.map site_str plan)

let parse_site clause =
  let fields =
    String.split_on_char ',' clause
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match fields with
  | [] -> Error "empty fault clause"
  | action_str :: rest ->
    let action =
      match String.split_on_char '=' action_str with
      | [ "crash" ] -> Ok Crash
      | [ "fail" ] -> Ok Fail
      | [ "corrupt" ] -> Ok Corrupt
      | [ "delay"; d ] -> (
        match int_of_string_opt d with
        | Some d when d >= 0 -> Ok (Delay d)
        | _ -> Error (Printf.sprintf "bad delay %S" d))
      | _ ->
        Error
          (Printf.sprintf
             "unknown action %S (expected crash, fail, corrupt or delay=K)"
             action_str)
    in
    Result.bind action (fun action ->
        let site = ref { tid = None; op = Any_op; nth = 1; action } in
        let err = ref None in
        List.iter
          (fun field ->
            if !err = None then
              match String.split_on_char '=' field with
              | [ "tid"; "*" ] -> site := { !site with tid = None }
              | [ "tid"; v ] -> (
                match int_of_string_opt v with
                | Some t when t >= 0 -> site := { !site with tid = Some t }
                | _ -> err := Some (Printf.sprintf "bad tid %S" v))
              | [ "op"; v ] -> (
                match List.assoc_opt v op_class_names with
                | Some c -> site := { !site with op = c }
                | None ->
                  err :=
                    Some
                      (Printf.sprintf "unknown op class %S (expected one of: %s)"
                         v
                         (String.concat ", " (List.map fst op_class_names))))
              | [ "n"; v ] -> (
                match int_of_string_opt v with
                | Some n when n >= 1 -> site := { !site with nth = n }
                | _ -> err := Some (Printf.sprintf "bad occurrence count %S" v))
              | _ -> err := Some (Printf.sprintf "unknown field %S" field))
          rest;
        match !err with Some e -> Error e | None -> Ok !site)

let parse s =
  let clauses =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc clause ->
        Result.bind acc (fun sites ->
            Result.map (fun site -> site :: sites) (parse_site clause)))
      (Ok []) clauses
    |> Result.map List.rev

let pp ppf plan = Format.pp_print_string ppf (to_string plan)

let has_wildcard plan = List.exists (fun s -> s.tid = None) plan

(* ------------------------------------------------------------------ *)
(* Seeded random plans                                                 *)
(* ------------------------------------------------------------------ *)

(* Deterministically derive a plan from a seed: same seed, same plan.
   Sites are always tid-qualified so the plan stays deterministic even
   under scheduling jitter (see [injector]). *)
let random ~seed ~tids ~sites:n =
  if tids = [] then invalid_arg "Fault_plan.random: no tids";
  let rng = Det_rng.create seed in
  let tids = Array.of_list tids in
  List.init n (fun _ ->
      let tid = tids.(Det_rng.int rng (Array.length tids)) in
      let op =
        match Det_rng.int rng 4 with
        | 0 -> Lock_op
        | 1 -> Unlock_op
        | 2 -> Store_op
        | _ -> Any_op
      in
      let action =
        match Det_rng.int rng 3 with
        | 0 -> Crash
        | 1 -> Fail
        | _ -> Delay (1 + Det_rng.int rng 10_000)
      in
      { tid = Some tid; op; nth = 1 + Det_rng.int rng 8; action })
