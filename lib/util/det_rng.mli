(** Deterministic pseudorandom number generator (SplitMix64).

    Every source of "randomness" in the simulator must come from one of
    these generators so that a run is a pure function of its seeds.  The
    generator is splittable: independent streams can be derived for
    sub-components without sharing state.

    Domain safety: a [t] is unsynchronized mutable state — concurrent
    [next_int64] from two host domains would tear the stream (and the
    determinism it exists for).  Create one generator per simulated run
    and keep it on that run's domain; under [Rfdet_par.Par] sweeps every
    run derives its own from its seed, never from a shared module-level
    generator (this module deliberately exports none, and the simulator
    never calls [Stdlib.Random]). *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int64 -> t

(** [split t] derives an independent generator; the parent stream is
    advanced by one step. *)
val split : t -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [next_int64 t] returns a uniformly distributed 64-bit value. *)
val next_int64 : t -> int64

(** [int t bound] returns a uniform value in [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] returns a uniform value in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] returns a uniform float in [0, bound). *)
val float : t -> float -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [exponential t ~mean] samples an exponential distribution, used for
    nondeterministic latency jitter in the pthreads baseline. *)
val exponential : t -> mean:float -> float
